// Shared protocol for Figures 6 and 7 — efficiency of query relaxation.
//
// Paper §6.3: pick 10 random tuples of CarDB; for each, extract 20 tuples
// with similarity above Tsim ∈ {0.5, 0.6, 0.7} via relaxation, and report
// Work/RelevantTuple = |T_extracted| / |T_relevant| — the average number of
// tuples a user would look at per relevant tuple. GuidedRelax stays around
// ~4 extracted per relevant tuple; RandomRelax blows up into the hundreds at
// higher thresholds.

#ifndef AIMQ_BENCH_RELAX_EFFICIENCY_H_
#define AIMQ_BENCH_RELAX_EFFICIENCY_H_

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/rng.h"
#include "util/strings.h"
#include "webdb/web_database.h"

namespace aimq {
namespace bench {

inline int RunRelaxEfficiency(RelaxationStrategy strategy) {
  PrintHeader(std::string("Efficiency of ") +
              RelaxationStrategyName(strategy) + " (CarDB 100k)");

  WebDatabase db("CarDB", FullCarDb());
  AimqOptions options = CarDbOptions();
  options.collector.sample_size = 25000;  // learn from a 25k probed sample
  auto knowledge = BuildKnowledge(db, options);
  if (!knowledge.ok()) {
    std::fprintf(stderr, "offline learning failed: %s\n",
                 knowledge.status().ToString().c_str());
    return 1;
  }
  AimqEngine engine(&db, knowledge.TakeValue(), options);

  // 10 random probe tuples, the same ones for every threshold and strategy
  // (fixed seed).
  const Relation& hidden = db.hidden_relation_for_testing();
  Rng rng(41);
  std::vector<size_t> probe_rows = rng.SampleWithoutReplacement(
      hidden.NumTuples(), 10);

  const std::vector<double> thresholds{0.5, 0.6, 0.7};
  std::vector<std::vector<std::string>> rows;
  std::vector<double> avg_work_per_threshold;
  for (double tsim : thresholds) {
    std::vector<double> work;
    std::vector<double> found;
    for (size_t row : probe_rows) {
      RelaxationStats stats;
      auto result = engine.FindSimilar(hidden.tuple(row), 20, tsim, strategy,
                                       &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "FindSimilar failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      work.push_back(stats.WorkPerRelevantTuple());
      found.push_back(static_cast<double>(result->size()));
    }
    avg_work_per_threshold.push_back(Mean(work));
    rows.push_back({FormatDouble(tsim, 1), FormatDouble(Mean(work), 1),
                    FormatDouble(Mean(found), 1)});
  }
  std::printf("\nTarget: 20 relevant tuples per probe query, 10 queries\n");
  PrintTable({"Tsim", "Work/RelevantTuple (avg)", "Relevant found (avg)"},
             rows);

  std::printf("\nPer-query Work/RelevantTuple at Tsim = 0.7:\n");
  std::vector<std::vector<std::string>> detail;
  for (size_t i = 0; i < probe_rows.size(); ++i) {
    RelaxationStats stats;
    auto result = engine.FindSimilar(hidden.tuple(probe_rows[i]), 20, 0.7,
                                     strategy, &stats);
    if (!result.ok()) return 1;
    detail.push_back({"Q" + std::to_string(i + 1),
                      FormatDouble(stats.WorkPerRelevantTuple(), 1),
                      std::to_string(stats.tuples_relevant),
                      std::to_string(stats.tuples_extracted),
                      std::to_string(stats.queries_issued)});
  }
  PrintTable({"Query", "Work/Relevant", "Relevant", "Extracted", "Probes"},
             detail);

  std::printf(
      "\nPaper shape: GuidedRelax stays near ~4 extracted tuples per "
      "relevant tuple; RandomRelax needs hundreds at high thresholds.\n");
  std::printf("%s averages: 0.5 -> %.1f, 0.6 -> %.1f, 0.7 -> %.1f\n",
              RelaxationStrategyName(strategy), avg_work_per_threshold[0],
              avg_work_per_threshold[1], avg_work_per_threshold[2]);
  return 0;
}

}  // namespace bench
}  // namespace aimq

#endif  // AIMQ_BENCH_RELAX_EFFICIENCY_H_
