// Table 3 — Robust similarity estimation.
//
// The paper lists the top-3 values similar to Make=Kia, Model=Bronco and
// Year=1985 as estimated from a 25k sample and from the full 100k CarDB:
//
//   Make=Kia      -> Hyundai 0.17, Isuzu 0.15, Subaru 0.13
//   Model=Bronco  -> Aerostar 0.19/0.21, F-350 0/0.12, Econoline Van 0.11
//   Year=1985     -> 1986 0.16/0.18, 1984 0.13/0.14, 1987 0.12
//
// Absolute similarity values are lower on the smaller sample but the
// relative ordering among values is maintained; that ordering (not the
// magnitude) is what drives ranking.

#include "bench_util.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace aimq;
using namespace aimq::bench;

namespace {

struct Probe {
  size_t attr;
  const char* value;
  const char* label;
};

}  // namespace

int main() {
  PrintHeader("Table 3: Robust Similarity Estimation (CarDB 25k vs 100k)");

  Relation full = FullCarDb();
  AimqOptions options = CarDbOptions();

  Rng rng(29);
  Relation sample25 = full.SampleWithoutReplacement(25000, &rng);

  auto k100 = BuildKnowledgeFromSample(full, options);
  auto k25 = BuildKnowledgeFromSample(std::move(sample25), options);
  if (!k100.ok() || !k25.ok()) {
    std::fprintf(stderr, "mining failed\n");
    return 1;
  }

  const std::vector<Probe> probes{
      {CarDbGenerator::kMake, "Kia", "Make=Kia"},
      {CarDbGenerator::kModel, "Bronco", "Model=Bronco"},
      {CarDbGenerator::kYear, "1985", "Year=1985"},
  };

  std::vector<std::vector<std::string>> rows;
  size_t overlap_total = 0;
  for (const Probe& probe : probes) {
    auto top100 =
        k100->vsim.TopSimilar(probe.attr, Value::Cat(probe.value), 3);
    auto top25 = k25->vsim.TopSimilar(probe.attr, Value::Cat(probe.value), 3);
    for (size_t i = 0; i < top100.size(); ++i) {
      double sim25 =
          k25->vsim.VSim(probe.attr, Value::Cat(probe.value), top100[i].first);
      rows.push_back({i == 0 ? probe.label : "",
                      top100[i].first.ToString(),
                      FormatDouble(sim25, 3),
                      FormatDouble(top100[i].second, 3)});
      for (const auto& [value, sim] : top25) {
        if (value == top100[i].first) ++overlap_total;
      }
    }
  }

  PrintTable({"Value", "Similar Values", "25k", "100k"}, rows);
  // The robust form of the paper's claim: the sample and the full database
  // surface (essentially) the same nearest neighbors. The paper's own 25k
  // column reorders near-ties (its F-350 similarity drops to 0 at 25k), so
  // we check top-3 set overlap rather than strict ordering.
  std::printf(
      "\nTop-3 set overlap between 25k and 100k: %zu/9 -> %s\n",
      overlap_total,
      overlap_total >= 7 ? "paper shape REPRODUCED" : "NOT reproduced");
  std::printf(
      "Paper shape: smaller samples shrink the absolute similarities but "
      "keep the relative order.\n");
  return 0;
}
