// Figure 5 — Similarity graph for Make values.
//
// The paper draws the mined similarity graph over CarDB's Make values:
// Ford-Chevrolet 0.25, Ford-Toyota 0.16, Ford-Honda 0.12, Ford-Nissan 0.15,
// Ford-Dodge 0.22, Chevrolet-Nissan 0.11, with BMW disconnected from Ford
// (similarity below the threshold). The shape to reproduce: same-market
// makes (US big three; the Japanese sedan makers) form strong edges, while
// luxury makes sit far from mass-market ones.

#include "bench_util.h"
#include "similarity/similarity_graph.h"
#include "util/strings.h"

using namespace aimq;
using namespace aimq::bench;

int main() {
  PrintHeader("Figure 5: Similarity Graph for Make (CarDB 100k)");

  Relation full = FullCarDb();
  auto knowledge = BuildKnowledgeFromSample(full, CarDbOptions());
  if (!knowledge.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 knowledge.status().ToString().c_str());
    return 1;
  }

  // The paper prunes sub-threshold edges but does not give the threshold;
  // we derive one from the edge distribution (keep the ~10 strongest edges)
  // so the figure stays legible across data tweaks.
  SimilarityGraph all_edges =
      SimilarityGraph::Extract(knowledge->vsim, CarDbGenerator::kMake, 0.0);
  double threshold = 0.0;
  if (all_edges.edges().size() > 10) {
    threshold = all_edges.edges()[9].similarity;
  }
  SimilarityGraph graph = SimilarityGraph::Extract(
      knowledge->vsim, CarDbGenerator::kMake, threshold);

  std::vector<std::vector<std::string>> rows;
  for (const SimilarityEdge& e : graph.edges()) {
    rows.push_back({e.a.ToString(), e.b.ToString(),
                    FormatDouble(e.similarity, 3)});
  }
  std::printf("\nEdges with VSim >= %.2f\n", threshold);
  PrintTable({"Make A", "Make B", "VSim"}, rows);

  // The paper's focal node.
  std::printf("\nNeighbors of Ford:\n");
  for (const SimilarityEdge& e : graph.EdgesOf(Value::Cat("Ford"))) {
    const Value& other = e.a == Value::Cat("Ford") ? e.b : e.a;
    std::printf("  Ford -- %-12s %.3f\n", other.ToString().c_str(),
                e.similarity);
  }
  bool ford_chevy = false, ford_luxury = false;
  for (const SimilarityEdge& e : graph.EdgesOf(Value::Cat("Ford"))) {
    const Value& other = e.a == Value::Cat("Ford") ? e.b : e.a;
    if (other == Value::Cat("Chevrolet")) ford_chevy = true;
    if (other == Value::Cat("BMW") || other == Value::Cat("Mercedes")) {
      ford_luxury = true;
    }
  }
  // Extra structural check: the luxury makes pair with each other.
  auto bmw_top = knowledge->vsim.TopSimilar(CarDbGenerator::kMake,
                                            Value::Cat("BMW"), 1);
  bool bmw_mercedes =
      !bmw_top.empty() && bmw_top[0].first == Value::Cat("Mercedes");
  std::printf(
      "\nPaper shape: Ford-Chevrolet edge present (%s), Ford-BMW/Mercedes "
      "pruned (%s); BMW's closest make is Mercedes (%s)\n",
      ford_chevy ? "yes" : "NO", !ford_luxury ? "yes" : "NO",
      bmw_mercedes ? "yes" : "NO");

  std::printf("\nGraphviz DOT:\n%s", graph.ToDot("make_similarity").c_str());
  return 0;
}
