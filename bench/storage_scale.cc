// End-to-end larger-than-memory harness: streams a CarDB of --tuples rows
// straight into block-packed columnar storage (never materializing a
// row-store Relation), mines knowledge from a probed sample with supertuple
// bags spilled between mining phases, then answers fig6-style FindSimilar
// queries — all under one --allowed-memory budget with cold code blocks
// paged in from a spill file.
//
// --verify=plain additionally runs the identical protocol through the
// historical row-store + plain-columnar path and requires bit-identical
// ranked answers; this is the acceptance oracle (practical at <= 1M tuples;
// the 10M+ runs use --verify=none and rely on the invariant proven at small
// scale).
//
// Usage: storage_scale [--tuples=N] [--allowed-memory=SZ] [--queries=Q]
//                      [--codec=none|lite|zstd] [--verify=none|plain]
//                      [--json=<path>] [--isa=<scalar|sse4.2|avx2|native>]

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "simd/dispatch.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "webdb/web_database.h"

namespace aimq {
namespace bench {
namespace {

struct ProtocolResult {
  bool ok = false;
  double learn_seconds = 0.0;
  double query_seconds = 0.0;
  std::vector<std::vector<RankedAnswer>> answers;  // per anchor
};

// Offline learning + Q FindSimilar calls against \p db. Anchors are chosen
// by row index so the plain and packed arms see the same tuples.
ProtocolResult RunProtocol(WebDatabase& db, const AimqOptions& options,
                           const std::vector<size_t>& anchor_rows) {
  ProtocolResult out;
  Stopwatch learn_timer;
  auto knowledge = BuildKnowledge(db, options);
  if (!knowledge.ok()) {
    std::fprintf(stderr, "offline learning failed: %s\n",
                 knowledge.status().ToString().c_str());
    return out;
  }
  out.learn_seconds = learn_timer.ElapsedSeconds();

  AimqEngine engine(&db, knowledge.TakeValue(), options);
  Stopwatch query_timer;
  for (size_t row : anchor_rows) {
    const Tuple anchor = db.MaterializeRow(static_cast<uint32_t>(row));
    auto result = engine.FindSimilar(anchor, 10, options.tsim,
                                     RelaxationStrategy::kGuided);
    if (!result.ok()) {
      std::fprintf(stderr, "FindSimilar failed: %s\n",
                   result.status().ToString().c_str());
      return out;
    }
    out.answers.push_back(result.TakeValue());
  }
  out.query_seconds = query_timer.ElapsedSeconds();
  out.ok = true;
  return out;
}

bool IdenticalAnswers(const ProtocolResult& a, const ProtocolResult& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].size() != b.answers[i].size()) return false;
    for (size_t r = 0; r < a.answers[i].size(); ++r) {
      if (!(a.answers[i][r].tuple == b.answers[i][r].tuple) ||
          a.answers[i][r].similarity != b.answers[i][r].similarity) {
        return false;
      }
    }
  }
  return true;
}

int Run(int argc, char** argv) {
  size_t num_tuples = 1000000;
  size_t budget = 256u << 20;
  size_t num_queries = 5;
  storage::CodecKind codec = storage::CodecKind::kLite;
  std::string verify = "none";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--tuples=")) {
      num_tuples = static_cast<size_t>(std::atoll(arg.c_str() + 9));
    } else if (StartsWith(arg, "--allowed-memory=")) {
      if (!ParseByteSize(arg.substr(17), &budget)) {
        std::fprintf(stderr, "bad --allowed-memory: %s\n", arg.c_str());
        return 1;
      }
    } else if (StartsWith(arg, "--queries=")) {
      num_queries = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (StartsWith(arg, "--codec=")) {
      auto kind = storage::CodecFromName(arg.substr(8));
      if (!kind.ok()) {
        std::fprintf(stderr, "bad --codec: %s\n",
                     kind.status().ToString().c_str());
        return 1;
      }
      codec = kind.ValueOrDie();
    } else if (StartsWith(arg, "--verify=")) {
      verify = arg.substr(9);
      if (verify != "none" && verify != "plain") {
        std::fprintf(stderr, "bad --verify (none|plain): %s\n", arg.c_str());
        return 1;
      }
    } else if (StartsWith(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (StartsWith(arg, "--isa=")) {
      const Status s = simd::ForceIsa(arg.substr(6));
      if (!s.ok()) {
        std::fprintf(stderr, "storage_scale: %s\n", s.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }

  PrintHeader("Streamed CarDB under a memory budget (" +
              std::to_string(num_tuples) + " tuples, budget " +
              std::to_string(budget >> 20) + " MB)");

  CarDbSpec spec;
  spec.num_tuples = num_tuples;
  spec.seed = 2006;
  const CarDbGenerator gen(spec);

  const std::string tag = std::to_string(::getpid());
  ColumnarBuilder::Options opts;
  opts.store.codec = codec;
  opts.store.budget_bytes = budget;
  opts.store.spill_path = "/tmp/aimq_storage_scale_" + tag + ".spill";

  Stopwatch build_timer;
  auto packed = gen.GenerateColumnar(opts);
  if (!packed.ok()) {
    std::fprintf(stderr, "streamed build failed: %s\n",
                 packed.status().ToString().c_str());
    return 1;
  }
  const double build_seconds = build_timer.ElapsedSeconds();
  const storage::BlockStoreStats stats = (*packed)->block_store()->GetStats();
  const double n = static_cast<double>(num_tuples);
  std::printf("\nstreamed build: %.2f s (%.0f tuples/s)\n", build_seconds,
              build_seconds > 0 ? n / build_seconds : 0.0);
  std::printf("code columns: plain %.2f B/tuple -> stored %.2f B/tuple "
              "(%zu blocks/col, codec %s, spilled %.1f MB)\n",
              static_cast<double>(stats.plain_bytes) / n,
              static_cast<double>(stats.stored_bytes) / n, stats.num_blocks,
              storage::CodecName(stats.codec),
              static_cast<double>(stats.spilled_bytes) / 1048576.0);

  AimqOptions options = CarDbOptions();
  options.collector.sample_size =
      std::min<size_t>(25000, num_tuples / 4 > 0 ? num_tuples / 4 : 1);
  // Spill supertuple bags between the two mining phases, same budget story
  // as the code blocks.
  options.similarity.bag_spill_path = "/tmp/aimq_storage_scale_" + tag +
                                      ".bags";

  const size_t effective_queries =
      std::min<size_t>(num_queries, num_tuples);
  Rng rng(41);
  const std::vector<size_t> anchor_rows =
      rng.SampleWithoutReplacement(num_tuples, effective_queries);

  WebDatabase db("CarDB", *packed);
  ProtocolResult packed_run = RunProtocol(db, options, anchor_rows);
  if (!packed_run.ok) return 1;
  const storage::BlockStoreStats after =
      (*packed)->block_store()->GetStats();
  std::printf("\noffline learning: %.2f s; %zu queries: %.3f s\n",
              packed_run.learn_seconds, effective_queries,
              packed_run.query_seconds);
  std::printf("block cache: hits=%zu misses=%zu evictions=%zu resident=%.1f "
              "MB of %.1f MB budget\n",
              after.cache.hits, after.cache.misses, after.cache.evictions,
              static_cast<double>(after.cache.resident_bytes) / 1048576.0,
              static_cast<double>(budget) / 1048576.0);
  std::printf("peak RSS: %.1f MB\n",
              static_cast<double>(PeakRssBytes()) / 1048576.0);

  bool verified = true;
  if (verify == "plain") {
    std::printf("\nverify arm: row-store + plain columnar oracle...\n");
    AimqOptions plain_options = options;
    plain_options.similarity.bag_spill_path.clear();  // resident bags
    WebDatabase plain_db("CarDB", gen.Generate());
    ProtocolResult plain_run =
        RunProtocol(plain_db, plain_options, anchor_rows);
    if (!plain_run.ok) return 1;
    verified = IdenticalAnswers(packed_run, plain_run);
    std::printf("packed answers identical to plain oracle: %s\n",
                verified ? "yes" : "NO — STORAGE DIVERGENCE");
  }

  if (!json_path.empty()) {
    Json doc = Json::Obj();
    doc.Set("bench", Json::Str("storage_scale"));
    doc.Set("git_sha", Json::Str(GitSha()));
    doc.Set("tuples", Json::Num(n));
    doc.Set("allowed_memory_bytes", Json::Num(static_cast<double>(budget)));
    doc.Set("build_seconds", Json::Num(build_seconds));
    doc.Set("tuples_per_second",
            Json::Num(build_seconds > 0 ? n / build_seconds : 0.0));
    doc.Set("learn_seconds", Json::Num(packed_run.learn_seconds));
    doc.Set("query_seconds", Json::Num(packed_run.query_seconds));
    doc.Set("queries", Json::Num(static_cast<double>(effective_queries)));
    doc.Set("bytes_per_tuple", BytesPerTupleJson(**packed));
    doc.Set("spilled_bytes",
            Json::Num(static_cast<double>(after.spilled_bytes)));
    Json cache = Json::Obj();
    cache.Set("hits", Json::Num(static_cast<double>(after.cache.hits)));
    cache.Set("misses", Json::Num(static_cast<double>(after.cache.misses)));
    cache.Set("evictions",
              Json::Num(static_cast<double>(after.cache.evictions)));
    doc.Set("block_cache", std::move(cache));
    doc.Set("verify", Json::Str(verify));
    doc.Set("verified", Json::Bool(verified));
    doc.Set("peak_rss_bytes", Json::Num(static_cast<double>(PeakRssBytes())));
    if (!WriteJsonFile(json_path, doc)) return 1;
  }
  return verified ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace aimq

int main(int argc, char** argv) { return aimq::bench::Run(argc, argv); }
