// Storage-footprint and probe-scan harness for the block-based compressed
// storage subsystem (src/storage/). Reports, on the canonical 100k CarDB:
//
//   - bytes per tuple of the code columns: plain resident vectors vs
//     bit-packed blocks vs bit-packed + block codec;
//   - probe-scan cost (CodedConjunction compile + EvaluateAll) over the
//     plain snapshot, the packed snapshot, and a packed snapshot running
//     under a small memory budget with every block spilled to disk;
//   - bit-identity of all three scans' answers (the harness fails when any
//     differ, so the packed path can never silently drift from the oracle).
//
// Usage: storage_blocks [--tuples=N] [--allowed-memory=SZ] [--json=<path>]
//                       [--isa=<scalar|sse4.2|avx2|native>]

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/cardb.h"
#include "query/selection_query.h"
#include "relation/columnar.h"
#include "simd/dispatch.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "webdb/coded_query.h"

namespace aimq {
namespace bench {
namespace {

// The probe mix a guided relaxation issues against CarDB: one fully-bound
// seed query plus progressively relaxed variants mixing equality and range
// predicates over both categorical and numeric attributes.
std::vector<SelectionQuery> ProbeMix() {
  std::vector<SelectionQuery> probes;
  {
    SelectionQuery q;
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("Toyota")));
    q.AddPredicate(Predicate::Eq("Model", Value::Cat("Camry")));
    q.AddPredicate(Predicate("Price", CompareOp::kLe, Value::Num(15000)));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("Honda")));
    q.AddPredicate(Predicate::Eq("Year", Value::Cat("2004")));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;
    q.AddPredicate(Predicate("Mileage", CompareOp::kLt, Value::Num(60000)));
    q.AddPredicate(Predicate("Price", CompareOp::kLt, Value::Num(10000)));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;
    q.AddPredicate(Predicate::Eq("Location", Value::Cat("Tempe")));
    probes.push_back(std::move(q));
  }
  return probes;
}

// Compile + EvaluateAll of every probe, repeated until the run is well above
// timer noise. Returns ns per scanned row and the concatenated answers.
double TimeProbeScans(const ColumnarRelation& cols,
                      const std::vector<SelectionQuery>& probes,
                      size_t repetitions, std::vector<uint32_t>* answers) {
  answers->clear();
  Stopwatch timer;
  for (size_t rep = 0; rep < repetitions; ++rep) {
    for (const SelectionQuery& q : probes) {
      const CodedConjunction compiled = CodedConjunction::Compile(q, cols);
      auto rows = compiled.EvaluateAll();
      if (!rows.ok()) {
        std::fprintf(stderr, "probe scan failed: %s\n",
                     rows.status().ToString().c_str());
        std::exit(1);
      }
      if (rep == 0) {
        answers->insert(answers->end(), rows.ValueOrDie().begin(),
                        rows.ValueOrDie().end());
      }
    }
  }
  const double total_rows = static_cast<double>(cols.NumRows()) *
                            static_cast<double>(probes.size()) *
                            static_cast<double>(repetitions);
  return timer.ElapsedSeconds() * 1e9 / (total_rows > 0 ? total_rows : 1.0);
}

int Run(int argc, char** argv) {
  size_t num_tuples = 100000;
  size_t budget = 8u << 20;  // the budgeted arm's --allowed-memory
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--tuples=")) {
      num_tuples = static_cast<size_t>(std::atoll(arg.c_str() + 9));
    } else if (StartsWith(arg, "--allowed-memory=")) {
      if (!ParseByteSize(arg.substr(17), &budget)) {
        std::fprintf(stderr, "bad --allowed-memory: %s\n", arg.c_str());
        return 1;
      }
    } else if (StartsWith(arg, "--json=")) {
      json_path = arg.substr(7);
    } else if (StartsWith(arg, "--isa=")) {
      const Status s = simd::ForceIsa(arg.substr(6));
      if (!s.ok()) {
        std::fprintf(stderr, "storage_blocks: %s\n", s.ToString().c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }

  PrintHeader("Block storage: footprint and probe scans (CarDB " +
              std::to_string(num_tuples) + ")");

  CarDbSpec spec;
  spec.num_tuples = num_tuples;
  spec.seed = 2006;
  const CarDbGenerator gen(spec);

  // The oracle: row-store generation + plain resident encoding.
  const Relation rows = gen.Generate();
  const ColumnarRelation plain(rows);

  // The same stream packed three ways.
  ColumnarBuilder::Options packed_opts;
  auto packed = gen.GenerateColumnar(packed_opts);

  ColumnarBuilder::Options coded_opts;
  coded_opts.store.codec = storage::CodecKind::kLite;
  auto coded = gen.GenerateColumnar(coded_opts);

  const std::string spill_path =
      "/tmp/aimq_storage_blocks_" + std::to_string(::getpid()) + ".spill";
  ColumnarBuilder::Options budget_opts;
  budget_opts.store.codec = storage::CodecKind::kLite;
  budget_opts.store.budget_bytes = budget;
  budget_opts.store.spill_path = spill_path;
  auto budgeted = gen.GenerateColumnar(budget_opts);

  if (!packed.ok() || !coded.ok() || !budgeted.ok()) {
    std::fprintf(stderr, "packed build failed: %s\n",
                 (!packed.ok()   ? packed.status()
                  : !coded.ok() ? coded.status()
                                : budgeted.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  const double n = static_cast<double>(plain.NumRows());
  const storage::BlockStoreStats packed_stats =
      (*packed)->block_store()->GetStats();
  const storage::BlockStoreStats coded_stats =
      (*coded)->block_store()->GetStats();
  std::printf("\nCode-column footprint (bytes per tuple):\n");
  PrintTable(
      {"layout", "bytes/tuple", "total MB"},
      {{"plain (4B codes)",
        FormatDouble(static_cast<double>(packed_stats.plain_bytes) / n, 2),
        FormatDouble(static_cast<double>(packed_stats.plain_bytes) / 1048576.0,
                     1)},
       {"packed",
        FormatDouble(static_cast<double>(packed_stats.packed_bytes) / n, 2),
        FormatDouble(
            static_cast<double>(packed_stats.packed_bytes) / 1048576.0, 1)},
       {"packed+lite",
        FormatDouble(static_cast<double>(coded_stats.stored_bytes) / n, 2),
        FormatDouble(static_cast<double>(coded_stats.stored_bytes) / 1048576.0,
                     1)}});

  const std::vector<SelectionQuery> probes = ProbeMix();
  const size_t reps = num_tuples >= 1000000 ? 2 : 10;
  std::vector<uint32_t> plain_answers;
  std::vector<uint32_t> packed_answers;
  std::vector<uint32_t> budget_answers;
  const double plain_ns = TimeProbeScans(plain, probes, reps, &plain_answers);
  const double packed_ns =
      TimeProbeScans(**packed, probes, reps, &packed_answers);
  const double budget_ns =
      TimeProbeScans(**budgeted, probes, reps, &budget_answers);

  const bool identical =
      plain_answers == packed_answers && plain_answers == budget_answers;
  // Re-read the budgeted store's stats now that the scans have generated
  // cache traffic.
  const storage::BlockStoreStats budget_after =
      (*budgeted)->block_store()->GetStats();
  std::printf("\nProbe scans (%zu probes x %zu reps, compile + full scan):\n",
              probes.size(), reps);
  PrintTable({"snapshot", "ns/row"},
             {{"plain", FormatDouble(plain_ns, 2)},
              {"packed", FormatDouble(packed_ns, 2)},
              {"packed+budget+spill", FormatDouble(budget_ns, 2)}});
  std::printf("identical answers across layouts: %s\n",
              identical ? "yes" : "NO — STORAGE DIVERGENCE");
  std::printf("budgeted arm: budget=%zu bytes, spilled=%zu bytes, "
              "cache hits=%zu misses=%zu evictions=%zu\n",
              budget, budget_after.spilled_bytes, budget_after.cache.hits,
              budget_after.cache.misses, budget_after.cache.evictions);

  if (!json_path.empty()) {
    Json doc = Json::Obj();
    doc.Set("bench", Json::Str("storage_blocks"));
    doc.Set("git_sha", Json::Str(GitSha()));
    doc.Set("tuples", Json::Num(n));
    Json bpt = BytesPerTupleJson(**packed);
    bpt.Set("stored_lite",
            Json::Num(static_cast<double>(coded_stats.stored_bytes) / n));
    doc.Set("bytes_per_tuple", std::move(bpt));
    Json scan = Json::Obj();
    scan.Set("plain_ns_per_row", Json::Num(plain_ns));
    scan.Set("packed_ns_per_row", Json::Num(packed_ns));
    scan.Set("budgeted_ns_per_row", Json::Num(budget_ns));
    doc.Set("probe_scan", std::move(scan));
    doc.Set("allowed_memory_bytes", Json::Num(static_cast<double>(budget)));
    doc.Set("spilled_bytes",
            Json::Num(static_cast<double>(budget_after.spilled_bytes)));
    doc.Set("deterministic", Json::Bool(identical));
    doc.Set("peak_rss_bytes", Json::Num(static_cast<double>(PeakRssBytes())));
    if (!WriteJsonFile(json_path, doc)) return 1;
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace aimq

int main(int argc, char** argv) { return aimq::bench::Run(argc, argv); }
