// Ablation — data-driven vs query-driven vs hybrid attribute importance.
//
// Paper §7 contrasts its data-driven importance (this system) with
// query-driven importance (the authors' companion approach): the latter
// "exploits user interest when the query workloads become available" but
// suffers a chicken-and-egg problem for new systems. This bench simulates a
// workload (car shoppers overwhelmingly constrain Model and Price), derives
// query-driven weights from the log, and compares pure data-driven, pure
// query-driven, and blended weights on the Figure-8-style simulated user
// study — with bootstrap confidence intervals.

#include <memory>

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/simulated_user.h"
#include "util/rng.h"
#include "util/strings.h"
#include "webdb/web_database.h"
#include "workload/query_log.h"

using namespace aimq;
using namespace aimq::bench;

int main() {
  PrintHeader("Ablation: data-driven vs query-driven importance (CarDB)");

  CarDbGenerator generator = FullCarDbGenerator();
  Relation data = generator.Generate();
  WebDatabase db("CarDB", data);

  AimqOptions options = CarDbOptions();
  options.collector.sample_size = 25000;
  auto mined = BuildKnowledge(db, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "offline learning failed\n");
    return 1;
  }
  std::vector<double> data_driven = mined->WimpVector();

  // Simulated workload: 500 queries with realistic attribute usage — nearly
  // every shopper constrains Model and/or Price; Year and Make are common;
  // Location sometimes; Mileage/Color rarely typed into the form.
  QueryLog log(&db.schema());
  {
    Rng rng(91);
    const std::vector<std::pair<const char*, double>> usage{
        {"Model", 0.85}, {"Price", 0.75},   {"Year", 0.35},
        {"Make", 0.30},  {"Location", 0.15}, {"Mileage", 0.08},
        {"Color", 0.03}};
    for (int i = 0; i < 500; ++i) {
      ImpreciseQuery q;
      for (const auto& [attr, p] : usage) {
        if (rng.Bernoulli(p)) {
          const Schema& s = db.schema();
          size_t index = s.IndexOf(attr).ValueOrDie();
          q.Bind(attr, s.attribute(index).type == AttrType::kNumeric
                           ? Value::Num(1)
                           : Value::Cat("x"));
        }
      }
      if (q.Empty()) q.Bind("Model", Value::Cat("x"));
      if (!log.Record(q).ok()) return 1;
    }
  }
  std::vector<double> query_driven = log.ImportanceWeights();
  std::printf("\nWorkload of %zu queries. Query-driven weights:\n",
              log.NumQueries());
  for (size_t a = 0; a < db.schema().NumAttributes(); ++a) {
    std::printf("  %-10s data=%.3f query=%.3f\n",
                db.schema().attribute(a).name.c_str(), data_driven[a],
                query_driven[a]);
  }

  // Three engines differing only in ranking weights. (AimqEngine is pinned
  // in memory, so build each behind a unique_ptr.)
  auto engine_with_weights = [&](const std::vector<double>& w)
      -> std::unique_ptr<AimqEngine> {
    auto k = BuildKnowledge(db, options);
    if (!k.ok()) return nullptr;
    if (!k->ordering.SetWimp(w).ok()) return nullptr;
    return std::make_unique<AimqEngine>(&db, k.TakeValue(), options);
  };
  auto blended = BlendWeights(data_driven, query_driven, 0.5);
  if (!blended.ok()) return 1;

  auto data_engine = engine_with_weights(data_driven);
  auto query_engine = engine_with_weights(query_driven);
  auto hybrid_engine = engine_with_weights(*blended);
  if (!data_engine || !query_engine || !hybrid_engine) {
    std::fprintf(stderr, "engine construction failed\n");
    return 1;
  }

  SimulatedUserOptions uopts;
  uopts.noise_stddev = 0.02;
  SimulatedUser judge(
      [&generator](const Tuple& a, const Tuple& b) {
        return generator.TupleSimilarity(a, b);
      },
      uopts);

  Rng rng(97);
  std::vector<size_t> query_rows =
      rng.SampleWithoutReplacement(data.NumTuples(), 20);
  auto evaluate = [&](AimqEngine& engine) {
    std::vector<double> mrr;
    for (size_t row : query_rows) {
      const Tuple& probe = data.tuple(row);
      auto answers = engine.FindSimilar(probe, 10, options.tsim,
                                        RelaxationStrategy::kGuided);
      if (!answers.ok() || answers->empty()) continue;
      mrr.push_back(PaperMrr(judge.RankAnswers(probe, *answers)));
    }
    return BootstrapMeanCI(mrr);
  };

  MeanCI d = evaluate(*data_engine);
  MeanCI q = evaluate(*query_engine);
  MeanCI h = evaluate(*hybrid_engine);
  auto fmt = [](const MeanCI& ci) {
    return FormatDouble(ci.mean, 3) + "  [" + FormatDouble(ci.lo, 3) + ", " +
           FormatDouble(ci.hi, 3) + "]";
  };
  std::printf("\nSimulated user study, 20 queries, 95%% bootstrap CI\n");
  PrintTable({"Weighting", "Avg MRR  [95% CI]"},
             {{"Data-driven (AIMQ, this paper)", fmt(d)},
              {"Query-driven (workload)", fmt(q)},
              {"Hybrid (alpha = 0.5)", fmt(h)}});
  std::printf(
      "\nPaper's framing: data-driven importance works with no workload at "
      "all; query-driven needs a log but captures user interest; the hybrid "
      "should be competitive with both.\n");
  return 0;
}
