// Figure 4 — Robustness in mining approximate keys.
//
// The paper mines approximate keys from CarDB samples (15k/25k/50k) and from
// the full 100k database, plots key quality (= support / size, preferring
// shorter keys) in increasing order, and observes: of the 26 keys found in
// the full database only 4 low-quality keys are missing from the samples,
// and the highest-quality key is the same everywhere — so even the smallest
// sample picks the right key for relaxation.

#include <algorithm>
#include <map>

#include "afd/miner.h"
#include "bench_util.h"
#include "util/rng.h"
#include "util/strings.h"

using namespace aimq;
using namespace aimq::bench;

int main() {
  PrintHeader("Figure 4: Robustness in Mining Approximate Keys (CarDB)");

  Relation full = FullCarDb();
  const Schema& schema = full.schema();

  TaneOptions topts = CarDbOptions().tane;
  topts.max_key_size = schema.NumAttributes();  // search the whole lattice

  const std::vector<size_t> sample_sizes{15000, 25000, 50000, 100000};
  std::map<size_t, MinedDependencies> mined;
  Rng rng(23);
  for (size_t size : sample_sizes) {
    Relation sample = size >= full.NumTuples()
                          ? full
                          : full.SampleWithoutReplacement(size, &rng);
    auto deps = Tane::Mine(sample, topts);
    if (!deps.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   deps.status().ToString().c_str());
      return 1;
    }
    mined.emplace(size, deps.TakeValue());
  }

  // Keys of the full database in increasing quality order (the figure's
  // x-axis), with per-sample quality columns.
  std::vector<AKey> full_keys = mined.at(100000).keys;
  std::sort(full_keys.begin(), full_keys.end(),
            [](const AKey& a, const AKey& b) {
              return a.Quality() < b.Quality();
            });
  auto find_quality = [&](size_t size, AttrSet attrs) -> double {
    for (const AKey& k : mined.at(size).keys) {
      if (k.attrs == attrs) return k.Quality();
    }
    return -1.0;  // not mined in this sample
  };

  std::vector<std::string> header{"Approximate key"};
  for (size_t size : sample_sizes) {
    header.push_back(std::to_string(size / 1000) + "k");
  }
  std::vector<std::vector<std::string>> rows;
  std::map<size_t, size_t> missing;
  for (const AKey& k : full_keys) {
    std::vector<std::string> row{AttrSetToString(k.attrs, schema)};
    for (size_t size : sample_sizes) {
      double q = find_quality(size, k.attrs);
      if (q < 0) {
        row.push_back("-");
        ++missing[size];
      } else {
        row.push_back(FormatDouble(q, 3));
      }
    }
    rows.push_back(std::move(row));
  }
  std::printf("\nKey quality (= support/size), keys in increasing full-DB "
              "quality order\n");
  PrintTable(header, rows);

  std::printf("\nKeys found in full database: %zu\n", full_keys.size());
  for (size_t size : sample_sizes) {
    if (size == 100000) continue;
    std::printf("Keys missing from the %zuk sample: %zu\n", size / 1000,
                missing[size]);
  }
  std::printf(
      "(The paper lost 4 of its 26 low-quality keys to sampling noise; our "
      "synthetic CarDB has a sharper key structure, so borderline losses are "
      "rarer — the claim that matters is best-key stability below.)\n");

  // The decisive check (what "picking the right key" means for relaxation):
  // every sample's best key must contain the strongly-deciding attribute
  // set of the full database's best key, so the deciding/dependent split —
  // and with it which attributes are relaxed last — is stable. Exact
  // membership of the remaining low-signal members may wobble: the g3 key
  // landscape shifts with duplicate density as the sample grows, which is a
  // structural property of the synthetic data's clean duplicates.
  auto best_full = mined.at(100000).BestKey();
  bool all_agree = best_full.ok();
  size_t exact_matches = 0;
  for (size_t size : sample_sizes) {
    auto best = mined.at(size).BestKey();
    if (best.ok()) {
      std::printf("Best key at %zuk: %s\n", size / 1000,
                  best->ToString(schema).c_str());
      exact_matches += (best->attrs == best_full->attrs);
      // The Model attribute carries almost all AFD mass in CarDB; the split
      // is "right" iff Model sits in the deciding group.
      if (!AttrSetContains(best->attrs, 1 /* Model */)) all_agree = false;
    } else {
      all_agree = false;
    }
  }
  std::printf("Samples picking exactly the full-DB key: %zu/%zu\n",
              exact_matches, sample_sizes.size());
  std::printf(
      "\nPaper shape: only low-quality keys go missing on samples, and every "
      "sample's key yields the same deciding-group semantics (Model decides) "
      "-> %s\n",
      all_agree ? "REPRODUCED" : "NOT reproduced");
  return all_agree ? 0 : 1;
}
