// Figure 7 — Efficiency of RandomRelax (see relax_efficiency.h).
//
// Usage: fig7_random_relax [parallel_threads] [--json=<path>]

#include <cstdlib>
#include <string>

#include "relax_efficiency.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  size_t threads = 8;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (aimq::StartsWith(arg, "--json=")) {
      json_path = arg.substr(7);
    } else {
      threads = static_cast<size_t>(std::strtoul(arg.c_str(), nullptr, 10));
    }
  }
  if (threads == 0) threads = 1;
  return aimq::bench::RunRelaxEfficiency(aimq::RelaxationStrategy::kRandom,
                                         threads, json_path);
}
