// Figure 7 — Efficiency of RandomRelax (see relax_efficiency.h).

#include "relax_efficiency.h"

int main() {
  return aimq::bench::RunRelaxEfficiency(
      aimq::RelaxationStrategy::kRandom);
}
