// Microbenchmarks (google-benchmark) for the library's hot kernels:
// dictionary encoding, stripped-partition construction (row-store vs coded),
// partition products, g3 error evaluation, bag-Jaccard (string vs coded),
// probe scans (Value comparisons vs compiled code comparisons), supertuple
// construction, value-similarity mining, TANE, and ROCK link computation.
// These quantify where the offline phases of Table 2 spend their time and
// prove the dictionary-encoded storage core's win over the row-store
// baselines it replaced.
//
// Usage: micro_kernels [--json=<path>] [--isa=<scalar|sse4.2|avx2|native>]
//                      [benchmark flags]
//
// --json= writes a machine-readable baseline (headline ns/op per kernel plus
// the row-store/coded and scalar/SIMD speedups, the active ISA, and the git
// sha) in the same shape as the fig6/fig7/service_throughput baselines; CI
// archives it as an artifact.
//
// --isa= pins the simd dispatch tier for the whole run (the *CodedScalar
// benchmarks additionally force the scalar tier around their own bodies, so
// every run reports paired scalar-vs-SIMD numbers). The *Parallel benchmarks
// carry the 1/2/4/8-thread scaling curve the nightly workflow archives:
// run with --benchmark_filter=Parallel.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "afd/partition.h"
#include "afd/tane.h"
#include "bench_util.h"
#include "datagen/cardb.h"
#include "query/selection_query.h"
#include "relation/columnar.h"
#include "rock/rock.h"
#include "simd/dispatch.h"
#include "similarity/supertuple.h"
#include "similarity/value_similarity.h"
#include "util/bag.h"
#include "util/coded_bag.h"
#include "util/rng.h"
#include "util/strings.h"
#include "webdb/coded_query.h"

namespace aimq {
namespace {

const Relation& CarSample(size_t n) {
  static auto* cache = new std::unordered_map<size_t, Relation>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    CarDbSpec spec;
    spec.num_tuples = n;
    spec.seed = 2006;
    it = cache->emplace(n, CarDbGenerator(spec).Generate()).first;
    // Pre-build the columnar snapshot so coded kernels measure their own
    // work, not first-touch encoding (BM_EncodeColumnar measures that).
    (void)it->second.columnar();
  }
  return it->second;
}

// Forces a simd dispatch tier for the lifetime of one benchmark body,
// restoring the previously active tier after (so --isa= pins survive).
class ScopedIsa {
 public:
  explicit ScopedIsa(const char* name) : prev_(simd::ActiveIsa()) {
    (void)simd::ForceIsa(name);
  }
  ~ScopedIsa() { (void)simd::ForceIsa(simd::IsaName(prev_)); }

 private:
  simd::Isa prev_;
};

// --- Storage core: encode ---------------------------------------------------

void BM_EncodeColumnar(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    ColumnarRelation cols(r);
    benchmark::DoNotOptimize(cols);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_EncodeColumnar)->Arg(25000)->Arg(100000);

// --- Partition construction: row-store baseline vs coded --------------------

void BM_PartitionBuildRow(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StrippedPartition::FromColumnRowStore(r, CarDbGenerator::kModel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionBuildRow)->Arg(10000)->Arg(50000)->Arg(100000);

void BM_PartitionBuildCoded(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StrippedPartition::FromColumn(r, CarDbGenerator::kModel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionBuildCoded)->Arg(10000)->Arg(50000)->Arg(100000);

void BM_PartitionBuildCodedScalar(benchmark::State& state) {
  // Same kernel as BM_PartitionBuildCoded, forced onto the scalar dispatch
  // tier — the pair quantifies the SIMD histogram win.
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  ScopedIsa isa("scalar");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StrippedPartition::FromColumn(r, CarDbGenerator::kModel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionBuildCodedScalar)->Arg(10000)->Arg(50000)->Arg(100000);

void BM_PartitionProduct(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  StrippedPartition model =
      StrippedPartition::FromColumn(r, CarDbGenerator::kModel);
  StrippedPartition year =
      StrippedPartition::FromColumn(r, CarDbGenerator::kYear);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Product(year));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionProduct)->Arg(10000)->Arg(100000);

void BM_FdError(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  StrippedPartition model =
      StrippedPartition::FromColumn(r, CarDbGenerator::kModel);
  StrippedPartition model_make = model.Product(
      StrippedPartition::FromColumn(r, CarDbGenerator::kMake));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.FdError(model_make));
  }
}
BENCHMARK(BM_FdError)->Arg(10000)->Arg(100000);

// --- Bag Jaccard: string-keyed baseline vs sorted coded arrays --------------

void BM_BagJaccard(benchmark::State& state) {
  Rng rng(7);
  Bag a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.Add("k" + std::to_string(rng.Uniform(state.range(0))), 1 + rng.Uniform(9));
    b.Add("k" + std::to_string(rng.Uniform(state.range(0))), 1 + rng.Uniform(9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.JaccardSimilarity(b));
  }
}
BENCHMARK(BM_BagJaccard)->Arg(16)->Arg(256)->Arg(4096);

void BM_BagJaccardCoded(benchmark::State& state) {
  // Same logical bags as BM_BagJaccard (same rng draws), keyword ids instead
  // of rendered keyword strings.
  Rng rng(7);
  CodedBag a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(state.range(0))),
          1 + rng.Uniform(9));
    b.Add(static_cast<uint32_t>(rng.Uniform(state.range(0))),
          1 + rng.Uniform(9));
  }
  a.Finalize();
  b.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.JaccardSimilarity(b));
  }
}
BENCHMARK(BM_BagJaccardCoded)->Arg(16)->Arg(256)->Arg(4096);

void BM_BagJaccardCodedScalar(benchmark::State& state) {
  // Scalar-forced pair of BM_BagJaccardCoded (SIMD merge intersection win).
  Rng rng(7);
  CodedBag a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.Add(static_cast<uint32_t>(rng.Uniform(state.range(0))),
          1 + rng.Uniform(9));
    b.Add(static_cast<uint32_t>(rng.Uniform(state.range(0))),
          1 + rng.Uniform(9));
  }
  a.Finalize();
  b.Finalize();
  ScopedIsa isa("scalar");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.JaccardSimilarity(b));
  }
}
BENCHMARK(BM_BagJaccardCodedScalar)->Arg(16)->Arg(256)->Arg(4096);

// --- Probe scan: Value comparisons vs compiled code comparisons -------------

SelectionQuery ProbeQuery() {
  SelectionQuery q;
  q.AddPredicate(Predicate::Eq("Make", Value::Cat("Toyota")));
  q.AddPredicate(Predicate("Price", CompareOp::kLe, Value::Num(15000)));
  return q;
}

void BM_ProbeScanRow(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  const SelectionQuery q = ProbeQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Evaluate(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_ProbeScanRow)->Arg(25000)->Arg(100000);

void BM_ProbeScanCoded(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  const SelectionQuery q = ProbeQuery();
  const ColumnarRelation& cols = *r.columnar();
  for (auto _ : state) {
    // Compile + scan, as WebDatabase::ExecuteRows does per probe.
    const CodedConjunction compiled = CodedConjunction::Compile(q, cols);
    benchmark::DoNotOptimize(compiled.EvaluateAll());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_ProbeScanCoded)->Arg(25000)->Arg(100000);

void BM_ProbeScanCodedScalar(benchmark::State& state) {
  // Scalar-forced pair of BM_ProbeScanCoded (SIMD bitmask-filter win).
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  const SelectionQuery q = ProbeQuery();
  const ColumnarRelation& cols = *r.columnar();
  ScopedIsa isa("scalar");
  for (auto _ : state) {
    const CodedConjunction compiled = CodedConjunction::Compile(q, cols);
    benchmark::DoNotOptimize(compiled.EvaluateAll());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_ProbeScanCodedScalar)->Arg(25000)->Arg(100000);

// --- Thread scaling (nightly sweep: --benchmark_filter=Parallel) ------------

// Each thread scans the shared snapshot concurrently; with --isa= /
// AIMQ_FORCE_ISA the same sweep measures scalar scaling. UseRealTime makes
// ns/op wall time per per-thread iteration, so a flat curve across
// threads:1..8 means linear read scaling.

void BM_ProbeScanCodedParallel(benchmark::State& state) {
  const Relation& r = CarSample(100000);
  const SelectionQuery q = ProbeQuery();
  const ColumnarRelation& cols = *r.columnar();
  for (auto _ : state) {
    const CodedConjunction compiled = CodedConjunction::Compile(q, cols);
    benchmark::DoNotOptimize(compiled.EvaluateAll());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_ProbeScanCodedParallel)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_PartitionBuildCodedParallel(benchmark::State& state) {
  const Relation& r = CarSample(100000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StrippedPartition::FromColumn(r, CarDbGenerator::kModel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionBuildCodedParallel)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// --- Offline phases ---------------------------------------------------------

void BM_SuperTupleBuildAll(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  for (auto _ : state) {
    auto sts = builder.BuildAll(CarDbGenerator::kMake);
    benchmark::DoNotOptimize(sts);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_SuperTupleBuildAll)->Arg(25000)->Arg(100000);

void BM_SimilarityMineMake(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  std::vector<double> wimp(r.schema().NumAttributes(),
                           1.0 / r.schema().NumAttributes());
  SimilarityMiner miner;
  for (auto _ : state) {
    auto model = miner.MineAttributes(r, wimp, {CarDbGenerator::kMake});
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_SimilarityMineMake)->Arg(25000)->Arg(100000);

void BM_TaneMine(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  TaneOptions opts;
  opts.error_threshold = 0.30;
  opts.max_lhs_size = 3;
  opts.max_key_size = 4;
  for (auto _ : state) {
    auto deps = Tane::Mine(r, opts);
    benchmark::DoNotOptimize(deps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_TaneMine)->Arg(15000)->Arg(50000)->Arg(100000);

void BM_RockBuild2k(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  RockOptions opts;
  opts.theta = 0.5;
  opts.sample_size = 2000;
  opts.num_clusters = 20;
  for (auto _ : state) {
    auto rock = RockClustering::Build(r, opts);
    benchmark::DoNotOptimize(rock);
  }
}
BENCHMARK(BM_RockBuild2k)->Arg(10000)->Arg(25000)->Unit(benchmark::kMillisecond);

// --- JSON baseline ----------------------------------------------------------

// Records every per-iteration run's ns/op alongside the console output, so
// one pass both prints the familiar table and feeds the JSON baseline.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      ns_per_op_[run.benchmark_name()] =
          run.real_accumulated_time / iters * 1e9;
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& ns_per_op() const { return ns_per_op_; }

 private:
  std::map<std::string, double> ns_per_op_;
};

// Row-store-ns / coded-ns at the largest argument both variants ran with.
double SpeedupAtLargestArg(const std::map<std::string, double>& ns,
                           const std::string& row_name,
                           const std::string& coded_name) {
  double best_arg = -1.0, row = 0.0, coded = 0.0;
  for (const auto& [name, value] : ns) {
    const size_t slash = name.rfind('/');
    if (slash == std::string::npos) continue;
    const std::string base = name.substr(0, slash);
    if (base != row_name) continue;
    const std::string arg = name.substr(slash);
    const auto it = ns.find(coded_name + arg);
    if (it == ns.end()) continue;
    const double arg_value = std::strtod(arg.c_str() + 1, nullptr);
    if (arg_value > best_arg) {
      best_arg = arg_value;
      row = value;
      coded = it->second;
    }
  }
  return coded > 0.0 ? row / coded : 0.0;
}

int RunMicroKernels(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (StartsWith(argv[i], "--json=")) {
      json_path = std::string(argv[i]).substr(7);
    } else if (StartsWith(argv[i], "--isa=")) {
      const Status s = simd::ForceIsa(std::string(argv[i]).substr(6));
      if (!s.ok()) {
        std::fprintf(stderr, "micro_kernels: %s\n", s.ToString().c_str());
        return 1;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json_path.empty()) return 0;
  Json kernels = Json::Obj();
  for (const auto& [name, value] : reporter.ns_per_op()) {
    kernels.Set(name, Json::Num(value));
  }
  Json speedups = Json::Obj();
  speedups.Set("partition_build",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_PartitionBuildRow",
                                             "BM_PartitionBuildCoded")));
  speedups.Set("bag_jaccard",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_BagJaccard",
                                             "BM_BagJaccardCoded")));
  speedups.Set("probe_scan",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_ProbeScanRow",
                                             "BM_ProbeScanCoded")));
  // Scalar-dispatch-ns / active-dispatch-ns for the three simd kernels.
  speedups.Set("simd_partition_build",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_PartitionBuildCodedScalar",
                                             "BM_PartitionBuildCoded")));
  speedups.Set("simd_bag_jaccard",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_BagJaccardCodedScalar",
                                             "BM_BagJaccardCoded")));
  speedups.Set("simd_probe_scan",
               Json::Num(SpeedupAtLargestArg(reporter.ns_per_op(),
                                             "BM_ProbeScanCodedScalar",
                                             "BM_ProbeScanCoded")));
  // Storage footprint: the same 20k-tuple CarDB prefix packed without and
  // with the block codec, against the 4-bytes-per-code plain layout.
  Json footprint = Json::Obj();
  {
    CarDbSpec spec;
    spec.num_tuples = 20000;
    spec.seed = 2006;
    const CarDbGenerator gen(spec);
    ColumnarBuilder::Options copts;
    auto packed = gen.GenerateColumnar(copts);
    copts.store.codec = storage::CodecKind::kLite;
    auto coded = gen.GenerateColumnar(copts);
    if (packed.ok() && coded.ok()) {
      Json plain_vs_packed = bench::BytesPerTupleJson(**packed);
      const storage::BlockStoreStats cstats =
          (*coded)->block_store()->GetStats();
      const double rows = static_cast<double>((*coded)->NumRows());
      plain_vs_packed.Set(
          "stored_lite",
          Json::Num(static_cast<double>(cstats.stored_bytes) / rows));
      footprint = std::move(plain_vs_packed);
    }
  }

  Json doc = Json::Obj();
  doc.Set("bench", Json::Str("micro_kernels"));
  doc.Set("git_sha", Json::Str(bench::GitSha()));
  doc.Set("isa", Json::Str(simd::IsaName(simd::ActiveIsa())));
  doc.Set("kernels", kernels);
  doc.Set("speedups", speedups);
  doc.Set("bytes_per_tuple", std::move(footprint));
  doc.Set("peak_rss_bytes",
          Json::Num(static_cast<double>(bench::PeakRssBytes())));
  return bench::WriteJsonFile(json_path, doc) ? 0 : 1;
}

}  // namespace
}  // namespace aimq

int main(int argc, char** argv) { return aimq::RunMicroKernels(argc, argv); }
