// Microbenchmarks (google-benchmark) for the library's hot kernels:
// stripped-partition construction and products, g3 error evaluation,
// bag-Jaccard, supertuple construction, value-similarity mining, TANE, and
// ROCK link computation. These quantify where the offline phases of Table 2
// spend their time.

#include <benchmark/benchmark.h>

#include "afd/partition.h"
#include "afd/tane.h"
#include "datagen/cardb.h"
#include "rock/rock.h"
#include "similarity/supertuple.h"
#include "similarity/value_similarity.h"
#include "util/bag.h"
#include "util/rng.h"

namespace aimq {
namespace {

const Relation& CarSample(size_t n) {
  static auto* cache = new std::unordered_map<size_t, Relation>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    CarDbSpec spec;
    spec.num_tuples = n;
    spec.seed = 2006;
    it = cache->emplace(n, CarDbGenerator(spec).Generate()).first;
  }
  return it->second;
}

void BM_PartitionFromColumn(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StrippedPartition::FromColumn(r, CarDbGenerator::kModel));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionFromColumn)->Arg(10000)->Arg(50000)->Arg(100000);

void BM_PartitionProduct(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  StrippedPartition model =
      StrippedPartition::FromColumn(r, CarDbGenerator::kModel);
  StrippedPartition year =
      StrippedPartition::FromColumn(r, CarDbGenerator::kYear);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Product(year));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_PartitionProduct)->Arg(10000)->Arg(100000);

void BM_FdError(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  StrippedPartition model =
      StrippedPartition::FromColumn(r, CarDbGenerator::kModel);
  StrippedPartition model_make = model.Product(
      StrippedPartition::FromColumn(r, CarDbGenerator::kMake));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.FdError(model_make));
  }
}
BENCHMARK(BM_FdError)->Arg(10000)->Arg(100000);

void BM_BagJaccard(benchmark::State& state) {
  Rng rng(7);
  Bag a, b;
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.Add("k" + std::to_string(rng.Uniform(state.range(0))), 1 + rng.Uniform(9));
    b.Add("k" + std::to_string(rng.Uniform(state.range(0))), 1 + rng.Uniform(9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.JaccardSimilarity(b));
  }
}
BENCHMARK(BM_BagJaccard)->Arg(16)->Arg(256)->Arg(4096);

void BM_SuperTupleBuildAll(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  for (auto _ : state) {
    auto sts = builder.BuildAll(CarDbGenerator::kMake);
    benchmark::DoNotOptimize(sts);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_SuperTupleBuildAll)->Arg(25000)->Arg(100000);

void BM_SimilarityMineMake(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  std::vector<double> wimp(r.schema().NumAttributes(),
                           1.0 / r.schema().NumAttributes());
  SimilarityMiner miner;
  for (auto _ : state) {
    auto model = miner.MineAttributes(r, wimp, {CarDbGenerator::kMake});
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_SimilarityMineMake)->Arg(25000)->Arg(100000);

void BM_TaneMine(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  TaneOptions opts;
  opts.error_threshold = 0.30;
  opts.max_lhs_size = 3;
  opts.max_key_size = 4;
  for (auto _ : state) {
    auto deps = Tane::Mine(r, opts);
    benchmark::DoNotOptimize(deps);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.NumTuples()));
}
BENCHMARK(BM_TaneMine)->Arg(15000)->Arg(50000)->Arg(100000);

void BM_RockBuild2k(benchmark::State& state) {
  const Relation& r = CarSample(static_cast<size_t>(state.range(0)));
  RockOptions opts;
  opts.theta = 0.5;
  opts.sample_size = 2000;
  opts.num_clusters = 20;
  for (auto _ : state) {
    auto rock = RockClustering::Build(r, opts);
    benchmark::DoNotOptimize(rock);
  }
}
BENCHMARK(BM_RockBuild2k)->Arg(10000)->Arg(25000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aimq

BENCHMARK_MAIN();
