// Ablation — how small can the probed sample get?
//
// Extends Figure 3/4: sweeps the learning-sample size from 2k to 100k and
// reports (a) whether the best approximate key matches the full database's,
// (b) the pairwise agreement of the relaxation order with the full-DB
// order, and (c) end-to-end answer quality (average ground-truth similarity
// of the top-10 answers for a fixed query set).

#include <algorithm>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/rng.h"
#include "util/strings.h"
#include "webdb/web_database.h"

using namespace aimq;
using namespace aimq::bench;

namespace {

// Pairwise-order agreement between two relaxation orders (1.0 = identical).
double OrderAgreement(const std::vector<size_t>& a,
                      const std::vector<size_t>& b) {
  const size_t n = a.size();
  std::vector<size_t> pos_a(n), pos_b(n);
  for (size_t i = 0; i < n; ++i) pos_a[a[i]] = i;
  for (size_t i = 0; i < n; ++i) pos_b[b[i]] = i;
  size_t agree = 0, total = 0;
  for (size_t x = 0; x < n; ++x) {
    for (size_t y = x + 1; y < n; ++y) {
      ++total;
      agree += ((pos_a[x] < pos_a[y]) == (pos_b[x] < pos_b[y]));
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) / total;
}

}  // namespace

int main() {
  PrintHeader("Ablation: learning-sample size sweep (CarDB)");

  CarDbGenerator generator = FullCarDbGenerator();
  Relation data = generator.Generate();
  WebDatabase db("CarDB", data);
  AimqOptions options = CarDbOptions();

  // Reference: knowledge mined from the full database.
  auto reference = BuildKnowledgeFromSample(data, options);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference mining failed\n");
    return 1;
  }

  Rng rng(59);
  std::vector<size_t> query_rows =
      rng.SampleWithoutReplacement(data.NumTuples(), 10);

  const std::vector<size_t> sizes{2000, 5000, 10000, 25000, 50000, 100000};
  std::vector<std::vector<std::string>> rows;
  Rng sample_rng(61);
  for (size_t size : sizes) {
    Relation sample = size >= data.NumTuples()
                          ? data
                          : data.SampleWithoutReplacement(size, &sample_rng);
    auto knowledge = BuildKnowledgeFromSample(std::move(sample), options);
    if (!knowledge.ok()) {
      rows.push_back({std::to_string(size), "mining failed", "-", "-"});
      continue;
    }
    std::string key_str =
        AttrSetToString(knowledge->ordering.best_key().attrs, db.schema());
    bool same_key = knowledge->ordering.best_key().attrs ==
                    reference->ordering.best_key().attrs;
    double agreement =
        OrderAgreement(knowledge->ordering.relaxation_order(),
                       reference->ordering.relaxation_order());

    AimqEngine engine(&db, knowledge.TakeValue(), options);
    std::vector<double> quality;
    for (size_t row : query_rows) {
      auto answers = engine.FindSimilar(data.tuple(row), 10, options.tsim,
                                        RelaxationStrategy::kGuided);
      if (!answers.ok()) continue;
      std::vector<double> gt;
      for (const RankedAnswer& a : *answers) {
        gt.push_back(generator.TupleSimilarity(data.tuple(row), a.tuple));
      }
      quality.push_back(Mean(gt));
    }
    rows.push_back({std::to_string(size), key_str, same_key ? "yes" : "NO",
                    FormatDouble(agreement, 2),
                    FormatDouble(Mean(quality), 3)});
  }
  PrintTable({"Sample size", "Best key", "Same as full DB", "Order agreement",
              "Avg GT similarity of top-10"},
             rows);
  std::printf(
      "\nExpectation (extends Fig 3/4): the mined model stabilizes well "
      "below the full database size.\n");
  return 0;
}
