#!/usr/bin/env python3
"""CI perf-regression gate for the bench baselines.

Compares a freshly produced bench JSON against the baseline artifact
downloaded from the latest successful main run, and fails (exit 1) when a
gated metric regressed by more than --threshold percent. Two document shapes
are understood:

- micro-kernel docs (a "kernels" object): every per-kernel ns/op entry is
  gated;
- service_throughput docs ("bench": "service_throughput"): the p99_ms
  latency percentile is gated. p50/p95 and throughput are reported for
  context but not gated — tail latency is the serving SLO, and the lower
  percentiles are too close to scheduler noise on shared CI runners.
- ingest_throughput docs ("bench": "ingest_throughput"): ns_per_row (ingest
  cost, lower is better) and publish_p99_ms (snapshot-swap tail) are gated;
  rows_per_sec and publish_p50_ms are context only.

Only per-kernel ns/op entries are gated. Thread-scaling entries (the
*Parallel benchmarks and google-benchmark's "/threads:N" variants) are
skipped: CI runners make multi-thread wall times too noisy to gate on.
Kernels present on only one side (renamed/added/removed benchmarks) are
reported but never fail the gate.

A missing baseline file is not an error — the first run on a fresh repo (or
an expired artifact) prints a notice and exits 0 so the gate bootstraps
itself.

Usage:
  check_bench.py --current=BENCH_micro_kernels.json \
                 --baseline=bench-baseline/BENCH_micro_kernels.json \
                 [--threshold=25]
"""

import argparse
import json
import os
import sys

# Substrings marking benchmarks too noisy to gate (thread-scaling sweeps,
# context-only service metrics).
NOISY_KEY_MARKERS = ("Parallel", "/threads:", "(context)")


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "kernels" not in doc:
        # Service/ingest bench docs gate a fixed set of higher-is-worse
        # metrics and carry the rest as ungated context.
        gated_keys = {
            "service_throughput": (("p99_ms",), ("p50_ms", "p95_ms", "qps")),
            "ingest_throughput": (("ns_per_row", "publish_p99_ms"),
                                  ("rows_per_sec", "publish_p50_ms")),
        }
        if doc.get("bench") in gated_keys:
            gate, context = gated_keys[doc["bench"]]
            out = {}
            for key in gate:
                try:
                    out[key] = float(doc[key])
                except (KeyError, TypeError, ValueError):
                    print(f"notice: {path}: no numeric {key!r}; not gated")
            for key in context:
                try:
                    out[f"{key} (context)"] = float(doc[key])
                except (KeyError, TypeError, ValueError):
                    pass
            return out
        # Other service/storage bench JSON (latency percentiles,
        # shard_scaling arrays, coalescing counters, ...) has no gated
        # entries. Nothing to gate — not an error.
        print(f"notice: {path} has no 'kernels' object; nothing to gate")
        return {}
    kernels = doc["kernels"]
    if not isinstance(kernels, dict):
        raise ValueError(f"{path}: 'kernels' is not an object")
    # Ignore non-numeric annotations (isa tags etc.); gate only ns/op values.
    out = {}
    for k, v in kernels.items():
        try:
            out[k] = float(v)
        except (TypeError, ValueError):
            print(f"notice: {path}: skipping non-numeric kernel entry "
                  f"{k!r}={v!r}")
    return out


def gated(name):
    return not any(marker in name for marker in NOISY_KEY_MARKERS)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="bench JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="bench JSON from the latest main run")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed ns/op regression, percent")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"notice: no baseline at {args.baseline}; skipping perf gate "
              "(first run or expired artifact)")
        return 0

    current = load_kernels(args.current)
    baseline = load_kernels(args.baseline)

    regressions = []
    print(f"{'kernel':<48} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            print(f"{name:<48} {baseline[name]:>12.1f} {'(gone)':>12}")
            continue
        if name not in baseline:
            print(f"{name:<48} {'(new)':>12} {current[name]:>12.1f}")
            continue
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base * 100.0 if base > 0 else 0.0
        flag = ""
        if gated(name) and delta > args.threshold:
            regressions.append((name, base, cur, delta))
            flag = "  << REGRESSION"
        skipped = "" if gated(name) else "  (not gated)"
        print(f"{name:<48} {base:>12.1f} {cur:>12.1f} {delta:>+7.1f}%"
              f"{flag}{skipped}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0f}% vs the main baseline:")
        for name, base, cur, delta in regressions:
            print(f"  {name}: {base:.1f} -> {cur:.1f} ({delta:+.1f}%)")
        return 1

    print(f"\nperf gate OK: no gated metric regressed more than "
          f"{args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
