// Property-based tests: invariants checked over randomized inputs using
// parameterized gtest sweeps (each parameter is an RNG seed / size).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "afd/partition.h"
#include "afd/tane.h"
#include "core/feedback.h"
#include "core/sim.h"
#include "ordering/attribute_ordering.h"
#include "rock/rock.h"
#include "ordering/multi_relax.h"
#include "similarity/value_similarity.h"
#include "util/bag.h"
#include "util/rng.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

// ---------------------------------------------------------------------------
// Random relation machinery shared by the sweeps.

Schema RandomSchema(size_t n_cat, size_t n_num) {
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < n_cat; ++i) {
    attrs.push_back({"C" + std::to_string(i), AttrType::kCategorical});
  }
  for (size_t i = 0; i < n_num; ++i) {
    attrs.push_back({"N" + std::to_string(i), AttrType::kNumeric});
  }
  return Schema::Make(std::move(attrs)).ValueOrDie();
}

Relation RandomRelation(uint64_t seed, size_t rows, size_t n_cat,
                        size_t n_num, size_t cardinality) {
  Rng rng(seed);
  Relation r(RandomSchema(n_cat, n_num));
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> vals;
    for (size_t c = 0; c < n_cat; ++c) {
      vals.push_back(Value::Cat("v" + std::to_string(rng.Uniform(cardinality))));
    }
    for (size_t n = 0; n < n_num; ++n) {
      vals.push_back(Value::Num(static_cast<double>(rng.Uniform(50))));
    }
    r.AppendUnchecked(Tuple(std::move(vals)));
  }
  return r;
}

// Brute-force g3 error of X→A over a relation.
double BruteForceG3(const Relation& r, const std::vector<size_t>& lhs,
                    size_t rhs) {
  std::map<std::vector<std::string>, std::map<std::string, size_t>> groups;
  for (const Tuple& t : r.tuples()) {
    std::vector<std::string> key;
    for (size_t a : lhs) key.push_back(t.At(a).ToString());
    ++groups[key][t.At(rhs).ToString()];
  }
  size_t keep = 0;
  for (const auto& [key, rhs_counts] : groups) {
    size_t best = 0;
    for (const auto& [v, cnt] : rhs_counts) best = std::max(best, cnt);
    keep += best;
  }
  return 1.0 - static_cast<double>(keep) / static_cast<double>(r.NumTuples());
}

// Brute-force key error of X.
double BruteForceKeyG3(const Relation& r, const std::vector<size_t>& attrs) {
  std::map<std::vector<std::string>, size_t> groups;
  for (const Tuple& t : r.tuples()) {
    std::vector<std::string> key;
    for (size_t a : attrs) key.push_back(t.At(a).ToString());
    ++groups[key];
  }
  return static_cast<double>(r.NumTuples() - groups.size()) /
         static_cast<double>(r.NumTuples());
}

// ---------------------------------------------------------------------------
// Bag invariants.

class BagPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BagPropertyTest, JaccardSymmetricBoundedAndReflexive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    Bag a, b;
    size_t items = 1 + rng.Uniform(20);
    for (size_t i = 0; i < items; ++i) {
      a.Add("k" + std::to_string(rng.Uniform(10)), 1 + rng.Uniform(5));
      b.Add("k" + std::to_string(rng.Uniform(10)), 1 + rng.Uniform(5));
    }
    double ab = a.JaccardSimilarity(b);
    EXPECT_DOUBLE_EQ(ab, b.JaccardSimilarity(a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(a.JaccardSimilarity(a), 1.0);
    // Inclusion-exclusion consistency.
    EXPECT_EQ(a.UnionSize(b) + a.IntersectionSize(b),
              a.TotalSize() + b.TotalSize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BagPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Partition invariants.

class PartitionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionPropertyTest, ProductRefinesFactors) {
  Relation r = RandomRelation(GetParam(), 200, 3, 0, 4);
  StrippedPartition p0 = StrippedPartition::FromColumn(r, 0);
  StrippedPartition p1 = StrippedPartition::FromColumn(r, 1);
  StrippedPartition p01 = p0.Product(p1);
  // Refinement can only increase the class count.
  EXPECT_GE(p01.NumClasses(), p0.NumClasses());
  EXPECT_GE(p01.NumClasses(), p1.NumClasses());
  // Key error can only decrease with more attributes.
  EXPECT_LE(p01.KeyError(), p0.KeyError());
  EXPECT_LE(p01.KeyError(), p1.KeyError());
}

TEST_P(PartitionPropertyTest, ProductIsAssociativeOnClassCount) {
  Relation r = RandomRelation(GetParam() + 100, 150, 3, 0, 3);
  StrippedPartition p0 = StrippedPartition::FromColumn(r, 0);
  StrippedPartition p1 = StrippedPartition::FromColumn(r, 1);
  StrippedPartition p2 = StrippedPartition::FromColumn(r, 2);
  EXPECT_EQ(p0.Product(p1).Product(p2).NumClasses(),
            p0.Product(p1.Product(p2)).NumClasses());
}

TEST_P(PartitionPropertyTest, FdErrorMatchesBruteForce) {
  Relation r = RandomRelation(GetParam() + 7, 120, 3, 0, 3);
  StrippedPartition p0 = StrippedPartition::FromColumn(r, 0);
  StrippedPartition p01 = p0.Product(StrippedPartition::FromColumn(r, 1));
  EXPECT_NEAR(p0.FdError(p01), BruteForceG3(r, {0}, 1), 1e-12);

  StrippedPartition p02 = p0.Product(StrippedPartition::FromColumn(r, 2));
  EXPECT_NEAR(p0.FdError(p02), BruteForceG3(r, {0}, 2), 1e-12);
}

TEST_P(PartitionPropertyTest, KeyErrorMatchesBruteForce) {
  Relation r = RandomRelation(GetParam() + 13, 120, 3, 0, 3);
  StrippedPartition p0 = StrippedPartition::FromColumn(r, 0);
  EXPECT_NEAR(p0.KeyError(), BruteForceKeyG3(r, {0}), 1e-12);
  StrippedPartition p01 = p0.Product(StrippedPartition::FromColumn(r, 1));
  EXPECT_NEAR(p01.KeyError(), BruteForceKeyG3(r, {0, 1}), 1e-12);
}

TEST_P(PartitionPropertyTest, FdErrorInUnitInterval) {
  Relation r = RandomRelation(GetParam() + 23, 80, 3, 0, 2);
  StrippedPartition p0 = StrippedPartition::FromColumn(r, 0);
  for (size_t rhs = 1; rhs < 3; ++rhs) {
    StrippedPartition pX =
        p0.Product(StrippedPartition::FromColumn(r, rhs));
    double e = p0.FdError(pX);
    EXPECT_GE(e, 0.0);
    EXPECT_LT(e, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// TANE agrees with brute force on every reported AFD.

class TanePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TanePropertyTest, ReportedErrorsMatchBruteForce) {
  Relation r = RandomRelation(GetParam(), 100, 4, 0, 3);
  TaneOptions opts;
  opts.error_threshold = 0.6;
  opts.max_lhs_size = 2;
  opts.max_key_size = 2;
  opts.prune_key_lhs = false;
  opts.min_gain = 0.0;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  ASSERT_FALSE(deps->afds.empty());
  for (const Afd& afd : deps->afds) {
    EXPECT_NEAR(afd.error, BruteForceG3(r, AttrSetMembers(afd.lhs), afd.rhs),
                1e-12)
        << afd.ToString(r.schema());
    EXPECT_LE(afd.error, opts.error_threshold);
  }
  for (const AKey& key : deps->keys) {
    EXPECT_NEAR(key.error, BruteForceKeyG3(r, AttrSetMembers(key.attrs)),
                1e-12);
  }
}

TEST_P(TanePropertyTest, MiningIsExhaustiveUpToLimits) {
  Relation r = RandomRelation(GetParam() + 5, 60, 3, 0, 2);
  TaneOptions opts;
  opts.error_threshold = 0.5;
  opts.max_lhs_size = 2;
  opts.prune_key_lhs = false;
  opts.min_gain = 0.0;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  // Every (X, A) pair with brute-force error <= threshold must be reported.
  size_t expected = 0;
  for (size_t k = 1; k <= 2; ++k) {
    for (AttrSet lhs : SubsetsOfSize(FullAttrSet(3), k)) {
      for (size_t rhs = 0; rhs < 3; ++rhs) {
        if (AttrSetContains(lhs, rhs)) continue;
        if (BruteForceG3(r, AttrSetMembers(lhs), rhs) <=
            opts.error_threshold) {
          ++expected;
        }
      }
    }
  }
  EXPECT_EQ(deps->afds.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TanePropertyTest,
                         ::testing::Values(3, 6, 9, 12, 15));

// ---------------------------------------------------------------------------
// Similarity model invariants.

class VSimPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VSimPropertyTest, SymmetricAndBounded) {
  Relation r = RandomRelation(GetParam(), 300, 3, 1, 6);
  std::vector<double> wimp(4, 0.25);
  auto model = SimilarityMiner().Mine(r, wimp);
  ASSERT_TRUE(model.ok());
  for (size_t attr = 0; attr < 3; ++attr) {
    auto values = model->MinedValues(attr);
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = 0; j < values.size(); ++j) {
        double s = model->VSim(attr, values[i], values[j]);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0 + 1e-12);
        EXPECT_DOUBLE_EQ(s, model->VSim(attr, values[j], values[i]));
        if (i == j) {
          EXPECT_DOUBLE_EQ(s, 1.0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VSimPropertyTest,
                         ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// Multi-attribute relaxation order invariants.

class MultiRelaxPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MultiRelaxPropertyTest, CombinationCountsAndOrdering) {
  auto [n, k] = GetParam();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = (i * 7 + 3) % 100;
  auto combos = MultiAttributeOrder(order, k);

  // Count = C(n, k).
  double expected = 1.0;
  for (size_t i = 0; i < k; ++i) {
    expected = expected * static_cast<double>(n - i) /
               static_cast<double>(i + 1);
  }
  EXPECT_EQ(combos.size(), static_cast<size_t>(expected + 0.5));

  // Each combo lists members in relaxation-position order, and combos are
  // lexicographic in positions.
  std::map<size_t, size_t> pos;
  for (size_t i = 0; i < n; ++i) pos[order[i]] = i;
  std::vector<std::vector<size_t>> as_positions;
  for (const auto& combo : combos) {
    std::vector<size_t> positions;
    for (size_t attr : combo) positions.push_back(pos[attr]);
    EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
    as_positions.push_back(positions);
  }
  EXPECT_TRUE(std::is_sorted(as_positions.begin(), as_positions.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MultiRelaxPropertyTest,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(5, 3),
                      std::make_tuple(7, 2), std::make_tuple(7, 4),
                      std::make_tuple(6, 6), std::make_tuple(8, 1)));

// ---------------------------------------------------------------------------
// End-to-end similarity bounds on random pipelines.

class PipelinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelinePropertyTest, QueryTupleSimAlwaysInUnitInterval) {
  Relation r = RandomRelation(GetParam(), 400, 2, 1, 5);
  TaneOptions topts;
  topts.error_threshold = 0.6;
  auto deps = Tane::Mine(r, topts);
  ASSERT_TRUE(deps.ok());
  if (deps->keys.empty()) GTEST_SKIP() << "no key mined for this seed";
  auto ordering = AttributeOrdering::Derive(r.schema(), *deps);
  ASSERT_TRUE(ordering.ok());
  std::vector<double> wimp;
  for (const auto& imp : ordering->importance()) wimp.push_back(imp.wimp);
  auto vsim = SimilarityMiner().Mine(r, wimp);
  ASSERT_TRUE(vsim.ok());
  SimilarityFunction sim(&r.schema(), &*ordering, &*vsim);

  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const Tuple& a = r.tuple(rng.Uniform(r.NumTuples()));
    const Tuple& b = r.tuple(rng.Uniform(r.NumTuples()));
    double s = sim.TupleTupleSim(a, b, {0, 1, 2});
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-12);
    EXPECT_NEAR(sim.TupleTupleSim(a, a, {0, 1, 2}), 1.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(17, 34, 51));

// ---------------------------------------------------------------------------
// Index-assisted Execute must agree with a brute-force scan on random
// conjunctive queries (the WebDatabase's value indexes are an invisible
// optimization).

class WebDbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WebDbPropertyTest, IndexedExecuteMatchesBruteScan) {
  Relation data = RandomRelation(GetParam(), 500, 3, 1, 5);
  WebDatabase db("R", data);
  Rng rng(GetParam() * 7 + 1);
  const Schema& schema = db.schema();

  for (int trial = 0; trial < 40; ++trial) {
    // Random conjunctive query: 1-3 predicates, equality on categoricals,
    // equality or range on the numeric attribute.
    SelectionQuery q;
    size_t preds = 1 + rng.Uniform(3);
    for (size_t p = 0; p < preds; ++p) {
      size_t attr = rng.Uniform(schema.NumAttributes());
      const Tuple& seed_tuple = data.tuple(rng.Uniform(data.NumTuples()));
      const Value& v = seed_tuple.At(attr);
      if (schema.attribute(attr).type == AttrType::kCategorical ||
          rng.Bernoulli(0.5)) {
        q.AddPredicate(Predicate::Eq(schema.attribute(attr).name, v));
      } else {
        CompareOp op = rng.Bernoulli(0.5) ? CompareOp::kLe : CompareOp::kGt;
        q.AddPredicate(Predicate(schema.attribute(attr).name, op, v));
      }
    }
    auto indexed = db.Execute(q);
    ASSERT_TRUE(indexed.ok()) << q.ToString();
    auto brute_rows = q.Evaluate(data);
    ASSERT_TRUE(brute_rows.ok());
    ASSERT_EQ(indexed->size(), brute_rows->size()) << q.ToString();
    // Same multiset of tuples (order may differ between index and scan).
    std::multiset<std::string> a, b;
    for (const Tuple& t : *indexed) a.insert(t.ToString());
    for (size_t row : *brute_rows) b.insert(data.tuple(row).ToString());
    EXPECT_EQ(a, b) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WebDbPropertyTest,
                         ::testing::Values(71, 72, 73, 74));

// ---------------------------------------------------------------------------
// Feedback invariants: weights remain a probability vector under arbitrary
// judgment patterns.

class FeedbackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeedbackPropertyTest, WeightsRemainProbabilityVector) {
  Relation r = RandomRelation(GetParam(), 200, 2, 1, 4);
  TaneOptions topts;
  topts.error_threshold = 0.6;
  auto deps = Tane::Mine(r, topts);
  ASSERT_TRUE(deps.ok());
  if (deps->keys.empty()) GTEST_SKIP() << "no key for this seed";
  auto ordering = AttributeOrdering::Derive(r.schema(), *deps);
  ASSERT_TRUE(ordering.ok());
  ValueSimilarityModel vsim;
  SimilarityFunction sim(&r.schema(), &*ordering, &vsim);

  RelevanceFeedback feedback;
  Rng rng(GetParam() + 1000);
  std::vector<double> w(3, 1.0 / 3.0);
  for (int round = 0; round < 25; ++round) {
    const Tuple& query = r.tuple(rng.Uniform(r.NumTuples()));
    std::vector<JudgedAnswer> judged;
    size_t k = 2 + rng.Uniform(6);
    for (size_t i = 0; i < k; ++i) {
      judged.push_back(JudgedAnswer{r.tuple(rng.Uniform(r.NumTuples())),
                                    static_cast<int>(rng.Uniform(k + 1))});
    }
    auto updated = feedback.Round(sim, r.schema(), query, judged, w);
    ASSERT_TRUE(updated.ok());
    w = updated.TakeValue();
    double total = 0.0;
    for (double x : w) {
      EXPECT_GT(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedbackPropertyTest,
                         ::testing::Values(5, 10, 15));

// ---------------------------------------------------------------------------
// ROCK invariants on random categorical data.

class RockPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RockPropertyTest, LabelsFormValidPartition) {
  Relation r = RandomRelation(GetParam(), 300, 4, 0, 3);
  RockOptions opts;
  opts.theta = 0.45;
  opts.num_clusters = 5;
  opts.sample_size = 150;
  opts.seed = GetParam();
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok()) << rock.status().ToString();

  const auto& labels = rock->labels();
  ASSERT_EQ(labels.size(), r.NumTuples());
  size_t labeled = 0;
  for (int32_t l : labels) {
    EXPECT_GE(l, -1);
    EXPECT_LT(l, static_cast<int32_t>(rock->num_clusters()));
    labeled += (l >= 0);
  }
  // ClusterMembers partitions exactly the labeled rows.
  size_t members_total = 0;
  for (size_t c = 0; c < rock->num_clusters(); ++c) {
    for (size_t row : rock->ClusterMembers(static_cast<int32_t>(c))) {
      EXPECT_EQ(labels[row], static_cast<int32_t>(c));
      ++members_total;
    }
  }
  EXPECT_EQ(members_total, labeled);
}

TEST_P(RockPropertyTest, WithinClusterSimilarityExceedsCrossCluster) {
  // Build data with genuine cluster structure: two disjoint vocabularies.
  Rng rng(GetParam());
  Relation r(RandomSchema(4, 0));
  for (int i = 0; i < 300; ++i) {
    bool group_a = rng.Bernoulli(0.5);
    std::vector<Value> vals;
    for (int c = 0; c < 4; ++c) {
      int v = static_cast<int>(rng.Uniform(3));
      vals.push_back(Value::Cat((group_a ? "a" : "b") + std::to_string(v)));
    }
    r.AppendUnchecked(Tuple(std::move(vals)));
  }
  RockOptions opts;
  opts.theta = 0.3;
  opts.num_clusters = 2;
  opts.sample_size = 200;
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());

  double within = 0.0, cross = 0.0;
  size_t within_n = 0, cross_n = 0;
  Rng pick(GetParam() + 9);
  for (int t = 0; t < 3000; ++t) {
    size_t i = pick.Uniform(r.NumTuples());
    size_t j = pick.Uniform(r.NumTuples());
    if (i == j) continue;
    if (rock->labels()[i] < 0 || rock->labels()[j] < 0) continue;
    double s = rock->RowSimilarity(i, j);
    if (rock->labels()[i] == rock->labels()[j]) {
      within += s;
      ++within_n;
    } else {
      cross += s;
      ++cross_n;
    }
  }
  ASSERT_GT(within_n, 100u);
  ASSERT_GT(cross_n, 100u);
  EXPECT_GT(within / within_n, cross / cross_n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RockPropertyTest,
                         ::testing::Values(41, 42, 43));

}  // namespace
}  // namespace aimq
