// LiveEngine unit tests: versioned publish/refresh semantics, ingest
// validation, version capture across swaps, shared-cache aging, and the
// stats surface the serving metrics read.

#include "live/live_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/cardb.h"

namespace aimq {
namespace {

ImpreciseQuery ModelQuery(const std::string& model) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat(model));
  return q;
}

class LiveEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 400;
    spec.seed = 11;
    data_ = new Relation(CarDbGenerator(spec).Generate());
    db_ = new WebDatabase("CarDB", *data_);

    CarDbSpec delta_spec;
    delta_spec.num_tuples = 60;
    delta_spec.seed = 77;
    delta_ = new Relation(CarDbGenerator(delta_spec).Generate());

    options_ = new AimqOptions();
    options_->collector.sample_size = 200;
    options_->tsim = 0.4;
    options_->top_k = 10;
    options_->num_threads = 1;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete delta_;
    delete db_;
    delete data_;
    knowledge_ = nullptr;
    options_ = nullptr;
    delta_ = nullptr;
    db_ = nullptr;
    data_ = nullptr;
  }

  static std::unique_ptr<LiveEngine> MakeLive(size_t cache_capacity = 0,
                                              size_t num_shards = 1) {
    LiveOptions lopts;
    lopts.engine = *options_;
    lopts.engine.probe_cache_capacity = cache_capacity;
    lopts.shards.num_shards = num_shards;
    auto live = LiveEngine::Create(db_, *knowledge_, lopts);
    EXPECT_TRUE(live.ok()) << live.status().ToString();
    return live.ok() ? live.TakeValue() : nullptr;
  }

  static std::vector<Tuple> DeltaRows(size_t begin, size_t count) {
    std::vector<Tuple> rows;
    for (size_t i = begin; i < begin + count && i < delta_->NumTuples(); ++i) {
      rows.push_back(delta_->tuple(i));
    }
    return rows;
  }

  static Relation* data_;
  static WebDatabase* db_;
  static Relation* delta_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

Relation* LiveEngineTest::data_ = nullptr;
WebDatabase* LiveEngineTest::db_ = nullptr;
Relation* LiveEngineTest::delta_ = nullptr;
AimqOptions* LiveEngineTest::options_ = nullptr;
MinedKnowledge* LiveEngineTest::knowledge_ = nullptr;

TEST_F(LiveEngineTest, InitialVersionMatchesDirectEngine) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  const auto v0 = live->Acquire();
  EXPECT_EQ(v0->snapshot_version, 0u);
  EXPECT_EQ(v0->knowledge_version, 1u);
  EXPECT_EQ(v0->num_rows, db_->NumTuples());
  EXPECT_EQ(v0->source.get(), db_);  // aliases the external source

  AimqOptions serial = *options_;
  serial.num_threads = 1;
  serial.probe_cache_capacity = 0;
  AimqEngine reference(db_, *knowledge_, serial);
  auto served = v0->engine->Answer(ModelQuery("Camry"));
  auto direct = reference.Answer(ModelQuery("Camry"));
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(served->size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*served)[i].tuple, (*direct)[i].tuple);
    EXPECT_EQ((*served)[i].similarity, (*direct)[i].similarity);
  }
}

TEST_F(LiveEngineTest, IngestValidatesAllOrNothing) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  std::vector<Tuple> batch = DeltaRows(0, 2);
  batch.push_back(Tuple({Value::Cat("only one column")}));  // bad arity
  EXPECT_FALSE(live->Ingest(std::move(batch)).ok());
  EXPECT_EQ(live->Stats().pending_rows, 0u);
  EXPECT_EQ(live->Stats().ingested_rows_total, 0u);

  // Type mismatch: numeric attribute fed a string.
  std::vector<Value> bad(db_->schema().NumAttributes());
  auto price = db_->schema().IndexOf("Price");
  ASSERT_TRUE(price.ok());
  bad[*price] = Value::Cat("not a number");
  EXPECT_FALSE(live->Ingest({Tuple(std::move(bad))}).ok());
  EXPECT_EQ(live->Stats().pending_rows, 0u);

  // Nulls are allowed anywhere.
  EXPECT_TRUE(
      live->Ingest({Tuple(std::vector<Value>(db_->schema().NumAttributes()))})
          .ok());
  EXPECT_EQ(live->Stats().pending_rows, 1u);
  EXPECT_EQ(live->Stats().ingested_rows_total, 1u);
}

TEST_F(LiveEngineTest, PublishAdvancesVersionAndGrowsRows) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(live->Ingest(DeltaRows(0, 25)).ok());
  EXPECT_EQ(live->Stats().pending_rows, 25u);

  auto published = live->PublishSnapshot();
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(*published, 1u);

  const auto v1 = live->Acquire();
  EXPECT_EQ(v1->snapshot_version, 1u);
  EXPECT_EQ(v1->num_rows, db_->NumTuples() + 25);
  EXPECT_EQ(v1->delta_rows, 25u);
  EXPECT_EQ(v1->source->NumTuples(), db_->NumTuples() + 25);
  EXPECT_TRUE(v1->source->has_posting_lists());

  const LiveIngestStats stats = live->Stats();
  EXPECT_EQ(stats.snapshot_version, 1u);
  EXPECT_EQ(stats.pending_rows, 0u);
  EXPECT_EQ(stats.publishes_total, 1u);
  EXPECT_EQ(stats.last_delta_rows, 25u);
  EXPECT_EQ(stats.rows_total, db_->NumTuples() + 25);
  EXPECT_EQ(stats.knowledge_staleness_rows, 25u);
  EXPECT_EQ(stats.publish_latency.count, 1u);
}

TEST_F(LiveEngineTest, EmptyPublishStillAdvancesTheVersion) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  auto published = live->PublishSnapshot();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 1u);
  EXPECT_EQ(live->Acquire()->num_rows, db_->NumTuples());
  EXPECT_EQ(live->Acquire()->delta_rows, 0u);
}

TEST_F(LiveEngineTest, CapturedVersionSurvivesLaterPublishes) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  const auto v0 = live->Acquire();
  auto before = v0->engine->Answer(ModelQuery("Civic"));
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(live->Ingest(DeltaRows(0, 40)).ok());
  ASSERT_TRUE(live->PublishSnapshot().ok());
  ASSERT_TRUE(live->PublishSnapshot().ok());

  // The captured version still answers over its own rows, unchanged.
  EXPECT_EQ(v0->num_rows, db_->NumTuples());
  auto after = v0->engine->Answer(ModelQuery("Civic"));
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].tuple, (*after)[i].tuple);
    EXPECT_EQ((*before)[i].similarity, (*after)[i].similarity);
  }
  EXPECT_EQ(live->Acquire()->snapshot_version, 2u);
}

TEST_F(LiveEngineTest, RefreshKnowledgeSharesSnapshotAndResetsStaleness) {
  auto live = MakeLive();
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(live->Ingest(DeltaRows(0, 30)).ok());
  ASSERT_TRUE(live->PublishSnapshot().ok());
  const auto v1 = live->Acquire();
  EXPECT_EQ(live->Stats().knowledge_staleness_rows, 30u);

  auto refreshed = live->RefreshKnowledge();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(*refreshed, 2u);

  const auto v2 = live->Acquire();
  EXPECT_EQ(v2->knowledge_version, 2u);
  EXPECT_EQ(v2->snapshot_version, 1u);  // knowledge-only swap
  EXPECT_EQ(v2->snapshot, v1->snapshot);
  EXPECT_EQ(v2->source, v1->source);
  EXPECT_NE(v2->engine.get(), v1->engine.get());
  EXPECT_EQ(v2->knowledge->mined_at_rows, v2->num_rows);
  EXPECT_EQ(live->Stats().knowledge_staleness_rows, 0u);
  EXPECT_EQ(live->Stats().refreshes_total, 1u);

  // The new edition answers; the superseded version's engine still works.
  EXPECT_TRUE(v2->engine->Answer(ModelQuery("Camry")).ok());
  EXPECT_TRUE(v1->engine->Answer(ModelQuery("Camry")).ok());
}

TEST_F(LiveEngineTest, PublishAgesOutSupersededCacheEntries) {
  auto live = MakeLive(/*cache_capacity=*/128);
  ASSERT_NE(live, nullptr);
  ASSERT_NE(live->probe_cache(), nullptr);
  ASSERT_TRUE(live->Acquire()->engine->Answer(ModelQuery("Camry")).ok());
  ASSERT_GT(live->probe_cache()->size(), 0u);

  ASSERT_TRUE(live->PublishSnapshot().ok());
  EXPECT_EQ(live->probe_cache()->size(), 0u);
  EXPECT_GT(live->probe_cache()->stats().version_evictions, 0u);
}

TEST_F(LiveEngineTest, ShardedVersionsReplanRangesOnPublish) {
  auto live = MakeLive(/*cache_capacity=*/0, /*num_shards=*/4);
  ASSERT_NE(live, nullptr);
  const auto v0 = live->Acquire();
  ASSERT_TRUE(v0->shard_build_status.ok())
      << v0->shard_build_status.ToString();
  ASSERT_NE(v0->facade, nullptr);
  EXPECT_EQ(v0->facade->num_shards(), 4u);

  ASSERT_TRUE(live->Ingest(DeltaRows(0, 40)).ok());
  ASSERT_TRUE(live->PublishSnapshot().ok());
  const auto v1 = live->Acquire();
  ASSERT_NE(v1->facade, nullptr);
  EXPECT_NE(v1->facade, v0->facade);  // generation-at-a-time swap
  EXPECT_EQ(v1->facade->NumTuples(), db_->NumTuples() + 40);
  // Old facade keeps serving the old version's rows.
  EXPECT_EQ(v0->facade->NumTuples(), db_->NumTuples());
}

}  // namespace
}  // namespace aimq
