#include "datagen/bibdb.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "core/knowledge.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

BibDbGenerator SmallGen() {
  BibDbSpec spec;
  spec.num_tuples = 8000;
  spec.seed = 2;
  return BibDbGenerator(spec);
}

TEST(BibDbTest, SchemaShape) {
  Schema s = BibDbGenerator::MakeSchema();
  ASSERT_EQ(s.NumAttributes(), 6u);
  EXPECT_EQ(s.attribute(BibDbGenerator::kVenue).name, "Venue");
  EXPECT_EQ(s.attribute(BibDbGenerator::kPages).type, AttrType::kNumeric);
  EXPECT_EQ(s.attribute(BibDbGenerator::kCitations).type, AttrType::kNumeric);
  EXPECT_EQ(s.attribute(BibDbGenerator::kYear).type, AttrType::kCategorical);
}

TEST(BibDbTest, GeneratesRequestedCountDeterministically) {
  Relation a = SmallGen().Generate();
  Relation b = SmallGen().Generate();
  EXPECT_EQ(a.NumTuples(), 8000u);
  EXPECT_EQ(a.tuples(), b.tuples());
}

TEST(BibDbTest, VenueDeterminesArea) {
  Relation r = SmallGen().Generate();
  std::unordered_map<std::string, std::string> venue_to_area;
  for (const Tuple& t : r.tuples()) {
    auto [it, inserted] = venue_to_area.emplace(
        t.At(BibDbGenerator::kVenue).AsCat(),
        t.At(BibDbGenerator::kArea).AsCat());
    EXPECT_EQ(it->second, t.At(BibDbGenerator::kArea).AsCat());
  }
  EXPECT_GT(venue_to_area.size(), 20u);
}

TEST(BibDbTest, KeywordsMostlyMatchArea) {
  // Keyword → Area is approximate: mostly consistent, with deliberate
  // cross-disciplinary leakage.
  Relation r = SmallGen().Generate();
  size_t consistent = 0;
  std::unordered_map<std::string, std::unordered_map<std::string, size_t>>
      keyword_areas;
  for (const Tuple& t : r.tuples()) {
    ++keyword_areas[t.At(BibDbGenerator::kKeyword).AsCat()]
                   [t.At(BibDbGenerator::kArea).AsCat()];
  }
  size_t majority_total = 0, total = 0;
  for (const auto& [kw, areas] : keyword_areas) {
    size_t best = 0, sum = 0;
    for (const auto& [area, cnt] : areas) {
      best = std::max(best, cnt);
      sum += cnt;
    }
    majority_total += best;
    total += sum;
  }
  (void)consistent;
  double majority_rate = static_cast<double>(majority_total) / total;
  EXPECT_GT(majority_rate, 0.55);
  EXPECT_LT(majority_rate, 0.98);
}

TEST(BibDbTest, VenueFoundingYearsRespected) {
  Relation r = SmallGen().Generate();
  for (const Tuple& t : r.tuples()) {
    if (t.At(BibDbGenerator::kVenue).AsCat() == "NSDI") {
      EXPECT_GE(std::stoi(t.At(BibDbGenerator::kYear).AsCat()), 2004);
    }
    if (t.At(BibDbGenerator::kVenue).AsCat() == "JMLR") {
      EXPECT_GE(std::stoi(t.At(BibDbGenerator::kYear).AsCat()), 2000);
    }
  }
}

TEST(BibDbTest, JournalsRunLongerPapers) {
  Relation r = SmallGen().Generate();
  double journal_sum = 0, conf_sum = 0;
  size_t journal_n = 0, conf_n = 0;
  for (const Tuple& t : r.tuples()) {
    const std::string& venue = t.At(BibDbGenerator::kVenue).AsCat();
    double pages = t.At(BibDbGenerator::kPages).AsNum();
    if (venue == "TODS" || venue == "JACM" || venue == "TOG") {
      journal_sum += pages;
      ++journal_n;
    } else if (venue == "SIGMOD" || venue == "STOC" || venue == "SIGGRAPH") {
      conf_sum += pages;
      ++conf_n;
    }
  }
  ASSERT_GT(journal_n, 20u);
  ASSERT_GT(conf_n, 100u);
  EXPECT_GT(journal_sum / journal_n, 1.5 * (conf_sum / conf_n));
}

TEST(BibDbTest, OracleVenueSimilaritySane) {
  BibDbGenerator gen = SmallGen();
  EXPECT_DOUBLE_EQ(gen.VenueSimilarity("SIGMOD", "SIGMOD"), 1.0);
  double sigmod_vldb = gen.VenueSimilarity("SIGMOD", "VLDB");
  double sigmod_siggraph = gen.VenueSimilarity("SIGMOD", "SIGGRAPH");
  EXPECT_GT(sigmod_vldb, sigmod_siggraph);
  // IR bridges Databases and AI.
  EXPECT_GT(gen.VenueSimilarity("SIGMOD", "SIGIR"),
            gen.VenueSimilarity("SIGMOD", "SOSP"));
  EXPECT_DOUBLE_EQ(gen.VenueSimilarity("SIGMOD", "Unknown"), 0.0);
}

TEST(BibDbTest, MinedVenueSimilarityRecoversAreas) {
  // The domain-independence check: with zero bibliography-specific input,
  // the mined similarity must put VLDB closer to SIGMOD than SIGGRAPH is.
  BibDbSpec spec;
  spec.num_tuples = 20000;
  spec.seed = 6;
  BibDbGenerator gen(spec);
  WebDatabase db("BibDB", gen.Generate());
  AimqOptions options;
  options.collector.sample_size = 10000;
  auto k = BuildKnowledge(db, options);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  double sigmod_vldb = k->vsim.VSim(BibDbGenerator::kVenue,
                                    Value::Cat("SIGMOD"), Value::Cat("VLDB"));
  double sigmod_siggraph = k->vsim.VSim(
      BibDbGenerator::kVenue, Value::Cat("SIGMOD"), Value::Cat("SIGGRAPH"));
  EXPECT_GT(sigmod_vldb, sigmod_siggraph);

  // Venue → Area must be mined as a (near-)exact AFD.
  bool found = false;
  for (const Afd& afd : k->dependencies.afds) {
    if (afd.lhs == AttrBit(BibDbGenerator::kVenue) &&
        afd.rhs == BibDbGenerator::kArea) {
      found = true;
      EXPECT_LT(afd.error, 0.01);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace aimq
