// End-to-end tracing through the service: a traced request must yield a
// well-formed span tree (request ⊇ queue_wait, execute ⊇ engine phases ⊇
// probes), correlated by request id, at full worker concurrency. Also the
// slow-query log (in-memory ring + NDJSON file) and the disabled fast path.
//
// The 8-worker test doubles as the TSan exercise for the tracing hot path.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/cardb.h"
#include "gtest/gtest.h"
#include "service/service.h"
#include "util/json.h"
#include "util/trace.h"

namespace aimq {
namespace {

ImpreciseQuery ModelQuery(const std::string& model) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat(model));
  return q;
}

class ServiceTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 400;
    spec.seed = 17;
    Relation data = CarDbGenerator(spec).Generate();
    db_ = new WebDatabase("CarDB", std::move(data));
    options_ = new AimqOptions();
    options_->collector.sample_size = 200;
    options_->tsim = 0.4;
    options_->top_k = 10;
    options_->num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
  }

  static std::unique_ptr<AimqService> MakeService(ServiceOptions sopts) {
    auto service =
        std::make_unique<AimqService>(db_, *knowledge_, *options_, sopts);
    EXPECT_TRUE(service->Start().ok());
    return service;
  }

  static WebDatabase* db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* ServiceTraceTest::db_ = nullptr;
AimqOptions* ServiceTraceTest::options_ = nullptr;
MinedKnowledge* ServiceTraceTest::knowledge_ = nullptr;

// [start, end] containment with identical endpoints allowed.
bool Contains(const TraceEvent& outer, const TraceEvent& inner) {
  const uint64_t outer_end = outer.start_nanos + outer.duration_nanos;
  const uint64_t inner_end = inner.start_nanos + inner.duration_nanos;
  return inner.start_nanos >= outer.start_nanos && inner_end <= outer_end;
}

TEST_F(ServiceTraceTest, EightWorkersYieldWellFormedSpanTreePerRequest) {
  ServiceOptions sopts;
  sopts.num_workers = 8;
  sopts.queue_depth = 256;
  sopts.enable_tracing = true;
  auto service = MakeService(sopts);

  const char* kModels[] = {"Camry", "Civic", "Altima", "Outback"};
  constexpr int kPerSubmitter = 6;
  std::atomic<int> completed{0};
  std::vector<uint64_t> ids(4 * kPerSubmitter, 0);
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const int slot = s * kPerSubmitter + i;
        const Status submitted = service->Submit(
            ModelQuery(kModels[(s + i) % 4]),
            [&, slot](Result<QueryResponse> r) {
              ASSERT_TRUE(r.ok()) << r.status().ToString();
              ids[slot] = r->request_id;
              completed.fetch_add(1);
            });
        ASSERT_TRUE(submitted.ok()) << submitted.ToString();
      }
    });
  }
  for (auto& t : submitters) t.join();
  service->Drain();
  ASSERT_EQ(completed.load(), 4 * kPerSubmitter);

  ASSERT_NE(service->trace(), nullptr);
  const std::vector<TraceEvent> events = service->trace()->Snapshot();
  EXPECT_EQ(service->trace()->dropped(), 0u);

  std::map<uint64_t, std::vector<const TraceEvent*>> by_request;
  for (const TraceEvent& e : events) by_request[e.request_id].push_back(&e);

  for (const uint64_t id : ids) {
    ASSERT_NE(id, 0u);
    auto it = by_request.find(id);
    ASSERT_NE(it, by_request.end()) << "no spans for request " << id;
    const TraceEvent* request = nullptr;
    const TraceEvent* queue_wait = nullptr;
    const TraceEvent* execute = nullptr;
    std::map<std::string, int> counts;
    for (const TraceEvent* e : it->second) {
      ++counts[e->name];
      if (e->name == "request") request = e;
      if (e->name == "queue_wait") queue_wait = e;
      if (e->name == "execute") execute = e;
    }
    // Exactly one root and one of each service-level child.
    ASSERT_NE(request, nullptr) << id;
    EXPECT_EQ(counts["request"], 1) << id;
    EXPECT_EQ(counts["queue_wait"], 1) << id;
    EXPECT_EQ(counts["execute"], 1) << id;
    // Engine phases present, probes issued.
    EXPECT_EQ(counts["base_set"], 1) << id;
    EXPECT_EQ(counts["relax"], 1) << id;
    EXPECT_EQ(counts["similarity_rank"], 1) << id;
    EXPECT_GE(counts["probe"], 1) << id;
    // Tree shape: every span nests inside the request; queue_wait and
    // execute partition it front-to-back; engine spans nest inside execute.
    ASSERT_NE(queue_wait, nullptr);
    ASSERT_NE(execute, nullptr);
    for (const TraceEvent* e : it->second) {
      EXPECT_TRUE(Contains(*request, *e))
          << e->name << " escapes request " << id;
      if (e->category == "engine") {
        EXPECT_TRUE(Contains(*execute, *e))
            << e->name << " escapes execute for request " << id;
      }
    }
    EXPECT_EQ(queue_wait->start_nanos, request->start_nanos) << id;
    EXPECT_GE(execute->start_nanos,
              queue_wait->start_nanos + queue_wait->duration_nanos)
        << id;
  }
}

TEST_F(ServiceTraceTest, ExplicitRequestIdRoundTrips) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.enable_tracing = true;
  auto service = MakeService(sopts);
  auto response = service->Execute(ModelQuery("Camry"), /*deadline_ms=*/0,
                                   /*request_id=*/777);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->request_id, 777u);
  bool saw_tagged_span = false;
  for (const TraceEvent& e : service->trace()->Snapshot()) {
    if (e.request_id == 777u) saw_tagged_span = true;
  }
  EXPECT_TRUE(saw_tagged_span);
}

TEST_F(ServiceTraceTest, ChromeTraceJsonIsLoadable) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.enable_tracing = true;
  auto service = MakeService(sopts);
  ASSERT_TRUE(service->Execute(ModelQuery("Civic")).ok());
  const std::string dump = service->ChromeTraceJson().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->AsArr().empty());
  for (const Json& e : events->AsArr()) {
    EXPECT_EQ(e.Find("ph")->AsStr(), "X");
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
    EXPECT_TRUE(e.Find("args")->Find("request_id")->is_number());
  }
}

TEST_F(ServiceTraceTest, TracingDisabledRecordsNothingAndIdsStillAssigned) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  auto service = MakeService(sopts);  // enable_tracing defaults to false
  EXPECT_EQ(service->trace(), nullptr);
  auto response = service->Execute(ModelQuery("Camry"));
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response->request_id, 0u);  // correlation ids cost nothing
  auto parsed = Json::Parse(service->ChromeTraceJson().Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("traceEvents")->AsArr().empty());
  EXPECT_TRUE(service->SlowQueries().empty());
}

TEST_F(ServiceTraceTest, SlowQueryLogCapturesSpanTreeInMemoryAndOnDisk) {
  const std::string log_path =
      ::testing::TempDir() + "/aimq_slow_query_test.ndjson";
  std::remove(log_path.c_str());
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.enable_tracing = true;
  sopts.slow_query_ms = 1e-6;  // everything is "slow"
  sopts.slow_query_log_path = log_path;
  auto service = MakeService(sopts);
  ASSERT_TRUE(service->Execute(ModelQuery("Camry")).ok());
  ASSERT_TRUE(service->Execute(ModelQuery("Civic")).ok());
  service->Drain();

  const std::vector<Json> records = service->SlowQueries();
  ASSERT_EQ(records.size(), 2u);
  for (const Json& record : records) {
    EXPECT_TRUE(record.Find("request_id")->is_number());
    EXPECT_TRUE(record.Find("query")->is_string());
    EXPECT_TRUE(record.Find("ok")->AsBool());
    EXPECT_GT(record.Find("total_ms")->AsNum(), 0.0);
    const Json* phases = record.Find("phases");
    ASSERT_NE(phases, nullptr);
    EXPECT_TRUE(phases->Find("relax_ms")->is_number());
    const Json* spans = record.Find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->is_array());
    EXPECT_FALSE(spans->AsArr().empty());
    bool saw_request_span = false;
    for (const Json& span : spans->AsArr()) {
      if (span.Find("name")->AsStr() == "request") saw_request_span = true;
    }
    EXPECT_TRUE(saw_request_span);
  }

  // Each NDJSON line on disk parses independently and mirrors the ring.
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    auto parsed = Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_TRUE(parsed->Find("spans")->is_array());
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(log_path.c_str());
}

TEST_F(ServiceTraceTest, BelowThresholdQueriesAreNotLogged) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.enable_tracing = true;
  sopts.slow_query_ms = 60'000.0;  // a minute — nothing qualifies
  auto service = MakeService(sopts);
  ASSERT_TRUE(service->Execute(ModelQuery("Camry")).ok());
  EXPECT_TRUE(service->SlowQueries().empty());
}

}  // namespace
}  // namespace aimq
