#include "rock/rock.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace aimq {
namespace {

Schema TwoCatSchema() {
  return Schema::Make({{"A", AttrType::kCategorical},
                       {"B", AttrType::kCategorical},
                       {"C", AttrType::kCategorical}})
      .ValueOrDie();
}

// Two clean clusters of identical-ish tuples plus one outlier.
Relation TwoClusters() {
  Relation r(TwoCatSchema());
  auto add = [&](const char* a, const char* b, const char* c) {
    ASSERT_TRUE(
        r.Append(Tuple({Value::Cat(a), Value::Cat(b), Value::Cat(c)})).ok());
  };
  for (int i = 0; i < 10; ++i) add("x", "y", i % 2 ? "z" : "w");
  for (int i = 0; i < 10; ++i) add("p", "q", i % 2 ? "r" : "s");
  add("lone", "wolf", "tuple");
  return r;
}

TEST(RockTest, FTheta) {
  EXPECT_DOUBLE_EQ(RockClustering::FTheta(0.5), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RockClustering::FTheta(0.0), 1.0);
  EXPECT_NEAR(RockClustering::FTheta(1.0), 0.0, 1e-12);
}

TEST(RockTest, GoodnessDenominatorPositiveAndGrowing) {
  double d11 = RockClustering::GoodnessDenominator(1, 1, 0.5);
  double d55 = RockClustering::GoodnessDenominator(5, 5, 0.5);
  EXPECT_GT(d11, 0.0);
  EXPECT_GT(d55, d11);
  // Matches the closed form (n1+n2)^(1+2f) − n1^(1+2f) − n2^(1+2f).
  double e = 1.0 + 2.0 / 3.0;
  EXPECT_NEAR(d55, std::pow(10.0, e) - 2.0 * std::pow(5.0, e), 1e-9);
}

TEST(RockTest, SeparatesObviousClusters) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.theta = 0.5;
  opts.num_clusters = 2;
  opts.sample_size = r.NumTuples();
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok()) << rock.status().ToString();
  const auto& labels = rock->labels();
  ASSERT_EQ(labels.size(), 21u);
  // Rows 0-9 share a label; rows 10-19 share a different one.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(labels[i], labels[10]);
  EXPECT_NE(labels[0], labels[10]);
}

TEST(RockTest, OutlierWithNoNeighborsUnlabeledOrOwnCluster) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.theta = 0.5;
  opts.num_clusters = 2;
  opts.sample_size = 20;  // outlier row 20 may or may not be sampled
  opts.seed = 3;
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());
  // The lone tuple must not join either big cluster via labeling.
  int32_t lone = rock->labels()[20];
  if (lone >= 0) {
    EXPECT_NE(lone, rock->labels()[0]);
    EXPECT_NE(lone, rock->labels()[10]);
  }
}

TEST(RockTest, ClusterMembersConsistentWithLabels) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.theta = 0.5;
  opts.num_clusters = 2;
  opts.sample_size = r.NumTuples();
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());
  size_t total = 0;
  for (size_t c = 0; c < rock->num_clusters(); ++c) {
    for (size_t row : rock->ClusterMembers(static_cast<int32_t>(c))) {
      EXPECT_EQ(rock->labels()[row], static_cast<int32_t>(c));
      ++total;
    }
  }
  size_t labeled = 0;
  for (int32_t l : rock->labels()) labeled += (l >= 0);
  EXPECT_EQ(total, labeled);
}

TEST(RockTest, RowSimilarityMatchesItemOverlap) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.sample_size = r.NumTuples();
  opts.num_clusters = 2;
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());
  // Rows 0 and 2 agree on all three attributes ("x","y","w").
  EXPECT_DOUBLE_EQ(rock->RowSimilarity(0, 2), 1.0);
  // Rows 0 and 1 agree on 2 of 3 → Jaccard 2/4 = 0.5.
  EXPECT_DOUBLE_EQ(rock->RowSimilarity(0, 1), 0.5);
  // Cross-cluster rows share nothing.
  EXPECT_DOUBLE_EQ(rock->RowSimilarity(0, 10), 0.0);
}

TEST(RockTest, ItemsForTupleHandlesUnknownValues) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.sample_size = r.NumTuples();
  opts.num_clusters = 2;
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());
  Tuple unknown({Value::Cat("never"), Value::Cat("seen"), Value::Cat("this")});
  auto items = rock->ItemsForTuple(unknown);
  EXPECT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(rock->ItemsSimilarity(items, 0), 0.0);

  Tuple known({Value::Cat("x"), Value::Cat("y"), Value::Cat("w")});
  EXPECT_DOUBLE_EQ(rock->ItemsSimilarity(rock->ItemsForTuple(known), 0), 1.0);
}

TEST(RockTest, NumericAttributesBinned) {
  auto schema = Schema::Make({{"Cat", AttrType::kCategorical},
                              {"Num", AttrType::kNumeric}});
  Relation r(*schema);
  for (double d : {1.0, 2.0, 100.0, 101.0}) {
    ASSERT_TRUE(r.Append(Tuple({Value::Cat("c"), Value::Num(d)})).ok());
  }
  RockOptions opts;
  opts.numeric_bins = 2;
  opts.sample_size = 4;
  opts.num_clusters = 2;
  auto rock = RockClustering::Build(r, opts);
  ASSERT_TRUE(rock.ok());
  // 1 and 2 share the low bin; 1 and 100 do not.
  EXPECT_DOUBLE_EQ(rock->RowSimilarity(0, 1), 1.0);
  EXPECT_LT(rock->RowSimilarity(0, 2), 1.0);
}

TEST(RockTest, TimingsReported) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.sample_size = r.NumTuples();
  opts.num_clusters = 2;
  RockTimings t;
  ASSERT_TRUE(RockClustering::Build(r, opts, &t).ok());
  EXPECT_GE(t.link_seconds, 0.0);
  EXPECT_GE(t.cluster_seconds, 0.0);
  EXPECT_GE(t.label_seconds, 0.0);
}

TEST(RockTest, InputValidation) {
  Relation empty(TwoCatSchema());
  EXPECT_FALSE(RockClustering::Build(empty, RockOptions{}).ok());

  Relation r = TwoClusters();
  RockOptions bad;
  bad.theta = 0.0;
  EXPECT_FALSE(RockClustering::Build(r, bad).ok());
  bad = RockOptions{};
  bad.num_clusters = 0;
  EXPECT_FALSE(RockClustering::Build(r, bad).ok());
}

TEST(RockTest, DeterministicPerSeed) {
  Relation r = TwoClusters();
  RockOptions opts;
  opts.sample_size = 15;
  opts.num_clusters = 2;
  opts.seed = 5;
  auto a = RockClustering::Build(r, opts);
  auto b = RockClustering::Build(r, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->labels(), b->labels());
}

}  // namespace
}  // namespace aimq
