#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

namespace aimq {
namespace {

TEST(CsvEncodeTest, PlainFields) {
  EXPECT_EQ(CsvEncodeRow({"a", "b", "c"}), "a,b,c");
}

TEST(CsvEncodeTest, QuotesSpecialFields) {
  EXPECT_EQ(CsvEncodeRow({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(CsvEncodeRow({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEncodeRow({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvDecodeTest, PlainFields) {
  auto r = CsvDecodeRow("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvDecodeTest, QuotedFields) {
  auto r = CsvDecodeRow("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvDecodeTest, EmptyFields) {
  auto r = CsvDecodeRow(",,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(CsvDecodeTest, UnbalancedQuotesError) {
  EXPECT_FALSE(CsvDecodeRow("\"oops").ok());
}

TEST(CsvRoundTripTest, EncodeDecodeIdentity) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                  "", "multi\nline"};
  auto decoded = CsvDecodeRow(CsvEncodeRow(fields));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, fields);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("aimq_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteReadRoundTrip) {
  std::vector<std::vector<std::string>> rows{
      {"Make", "Model"},
      {"Toyota", "Camry"},
      {"Ford", "F-150"},
      {"weird", "has,comma"},
  };
  ASSERT_TRUE(CsvWriteFile(path_.string(), rows).ok());
  auto read = CsvReadFile(path_.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(CsvFileTest, QuotedNewlineRoundTrip) {
  std::vector<std::vector<std::string>> rows{{"a\nb", "c"}};
  ASSERT_TRUE(CsvWriteFile(path_.string(), rows).ok());
  auto read = CsvReadFile(path_.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(CsvFileTest, MissingFileErrors) {
  auto read = CsvReadFile("/nonexistent/dir/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(CsvFileTest, WriteToBadPathErrors) {
  EXPECT_FALSE(CsvWriteFile("/nonexistent/dir/file.csv", {{"a"}}).ok());
}

}  // namespace
}  // namespace aimq
