// Property tests for the frame-of-reference bit-packer: exact round-trips at
// every width 1..32, sentinel survival, block-boundary offsets, and the
// degenerate empty / single-value / all-null blocks.

#include "storage/bitpack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "relation/value_dict.h"
#include "util/rng.h"

namespace aimq {
namespace storage {
namespace {

std::vector<uint32_t> RoundTrip(const std::vector<uint32_t>& codes) {
  const PackSpec spec = Analyze(codes.data(), codes.size());
  std::vector<uint8_t> packed(PackedBytes(spec.width, codes.size()));
  Pack(codes.data(), codes.size(), spec, packed.data());
  std::vector<uint32_t> out(codes.size());
  Unpack(packed.data(), codes.size(), spec, out.data());
  return out;
}

TEST(BitpackTest, SentinelsMatchValueDict) {
  // The storage layer restates the sentinels to stay dependency-free; they
  // must be the same bit patterns the dictionaries emit.
  EXPECT_EQ(kNullCode, ValueDict::kNullCode);
  EXPECT_EQ(kAbsentCode, ValueDict::kAbsentCode);
}

TEST(BitpackTest, EmptyBlock) {
  const std::vector<uint32_t> codes;
  const PackSpec spec = Analyze(codes.data(), 0);
  EXPECT_EQ(spec.width, 0);
  EXPECT_EQ(PackedBytes(spec.width, 0), 0u);
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, AllNullBlockPacksToZeroWidth) {
  const std::vector<uint32_t> codes(100, kNullCode);
  const PackSpec spec = Analyze(codes.data(), codes.size());
  EXPECT_EQ(spec.width, 0);
  EXPECT_EQ(PackedBytes(spec.width, codes.size()), 0u);
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, SingleValueBlock) {
  for (uint32_t code : {0u, 1u, 7u, 123456u, kAbsentCode - 1}) {
    const std::vector<uint32_t> codes{code};
    EXPECT_EQ(RoundTrip(codes), codes) << "code=" << code;
  }
}

TEST(BitpackTest, ConstantRunUsesTwoBits) {
  // One distinct real value: mapped domain is {0,1,2} -> width 2.
  const std::vector<uint32_t> codes(1000, 42);
  const PackSpec spec = Analyze(codes.data(), codes.size());
  EXPECT_EQ(spec.base, 42u);
  EXPECT_EQ(spec.width, 2);
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, FrameOfReferenceShrinksClusteredRuns) {
  // Codes clustered near one million still pack to a handful of bits.
  std::vector<uint32_t> codes;
  for (uint32_t i = 0; i < 500; ++i) codes.push_back(1'000'000 + i % 30);
  const PackSpec spec = Analyze(codes.data(), codes.size());
  EXPECT_EQ(spec.base, 1'000'000u);
  EXPECT_EQ(spec.width, 5);  // max mapped = 29 + 2 = 31
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, SentinelsSurviveAmongRealCodes) {
  std::vector<uint32_t> codes = {5, kNullCode, 9, kAbsentCode, 5, kNullCode, 6};
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, AbsentOnlyBlock) {
  const std::vector<uint32_t> codes(17, kAbsentCode);
  const PackSpec spec = Analyze(codes.data(), codes.size());
  EXPECT_EQ(spec.width, 1);
  EXPECT_EQ(RoundTrip(codes), codes);
}

TEST(BitpackTest, EveryWidthRoundTrips) {
  Rng rng(2006);
  for (int width = 1; width <= 32; ++width) {
    if (width == 1) {
      // Width 1 has no room for real codes: its packed domain is exactly
      // {null, absent}.
      std::vector<uint32_t> codes;
      for (int i = 0; i < 300; ++i) {
        codes.push_back(rng.Next() % 2 == 0 ? kNullCode : kAbsentCode);
      }
      codes[0] = kAbsentCode;
      const PackSpec spec = Analyze(codes.data(), codes.size());
      EXPECT_EQ(spec.width, 1);
      EXPECT_EQ(RoundTrip(codes), codes);
      continue;
    }
    // Span enough of the code range to force exactly `width` bits: max
    // mapped value 2^width - 1 means max real code = base + 2^width - 3.
    // At width 32 the span already reaches the last legal real code
    // (kAbsentCode - 1), so the base must stay 0 to avoid wrapping.
    const uint64_t span = (uint64_t{1} << width) - 3;
    const uint32_t base = (width % 2 == 0 && width < 32) ? 77u : 0u;
    std::vector<uint32_t> codes;
    for (int i = 0; i < 300; ++i) {
      const int kind = static_cast<int>(rng.Next() % 10);
      if (kind == 0) {
        codes.push_back(kNullCode);
      } else if (kind == 1) {
        codes.push_back(kAbsentCode);
      } else {
        codes.push_back(
            base + static_cast<uint32_t>(rng.Next() % (span + 1)));
      }
    }
    // Pin the extremes so Analyze picks precisely this width.
    codes[0] = base;
    codes[1] = base + static_cast<uint32_t>(span);
    const PackSpec spec = Analyze(codes.data(), codes.size());
    EXPECT_EQ(spec.base, base) << "width=" << width;
    EXPECT_EQ(spec.width, width) << "width=" << width;
    EXPECT_EQ(RoundTrip(codes), codes) << "width=" << width;
  }
}

TEST(BitpackTest, BlockBoundaryOffsetsUnaligned) {
  // Lengths around byte/word boundaries: packing must not require padding
  // entries, and the final partial byte must round-trip.
  Rng rng(7);
  for (size_t n : {1u, 2u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 255u, 256u, 257u}) {
    // Width 1 holds only the sentinels; its partial final byte must still
    // round-trip at every length.
    {
      std::vector<uint32_t> codes;
      for (size_t i = 0; i < n; ++i) {
        codes.push_back(rng.Next() % 2 == 0 ? kNullCode : kAbsentCode);
      }
      EXPECT_EQ(RoundTrip(codes), codes) << "n=" << n << " width=1";
    }
    for (int width : {3, 5, 7, 11, 13, 17, 31}) {
      const uint64_t span = (uint64_t{1} << width) - 3;
      std::vector<uint32_t> codes;
      for (size_t i = 0; i < n; ++i) {
        codes.push_back(static_cast<uint32_t>(rng.Next() % (span + 1)));
      }
      codes[0] = 0;
      if (n > 1) codes[1] = static_cast<uint32_t>(span);
      EXPECT_EQ(RoundTrip(codes), codes) << "n=" << n << " width=" << width;
    }
  }
}

TEST(BitpackTest, MaxCodeDomainWidth32) {
  // The largest legal real code maps to 2^32 - 1: the width-32 ceiling.
  const std::vector<uint32_t> codes = {0, kAbsentCode - 1, kNullCode,
                                       kAbsentCode};
  const PackSpec spec = Analyze(codes.data(), codes.size());
  EXPECT_EQ(spec.width, 32);
  EXPECT_EQ(RoundTrip(codes), codes);
}

}  // namespace
}  // namespace storage
}  // namespace aimq
