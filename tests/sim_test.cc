#include "core/sim.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

// Fixture wiring a hand-built ordering + similarity model.
class SimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = CarSchema();
    Relation r(schema_);
    auto add = [&](const char* model, double price) {
      ASSERT_TRUE(
          r.Append(Tuple({Value::Cat(model), Value::Num(price)})).ok());
    };
    // Camry and Accord share the price band; Viper is far away.
    add("Camry", 10000);
    add("Camry", 10400);
    add("Accord", 10100);
    add("Accord", 10600);
    add("Viper", 60000);
    add("Viper", 61000);

    MinedDependencies deps;
    deps.num_attributes = 2;
    deps.keys.push_back(AKey{AttrBit(0) | AttrBit(1), 0.0, true});
    deps.afds.push_back(Afd{AttrBit(0), 1, 0.2});
    // Give Price some antecedent mass too so both Wimp weights are nonzero.
    deps.afds.push_back(Afd{AttrBit(1), 0, 0.5});
    auto ordering = AttributeOrdering::Derive(schema_, deps);
    ASSERT_TRUE(ordering.ok());
    ordering_ = ordering.TakeValue();

    auto vsim = SimilarityMiner().Mine(r, {0.5, 0.5});
    ASSERT_TRUE(vsim.ok());
    vsim_ = vsim.TakeValue();
  }

  SimilarityFunction MakeSim() const {
    return SimilarityFunction(&schema_, &ordering_, &vsim_);
  }

  Schema schema_;
  AttributeOrdering ordering_;
  ValueSimilarityModel vsim_;
};

TEST_F(SimTest, CategoricalUsesVSim) {
  SimilarityFunction sim = MakeSim();
  double same = sim.AttributeSim(0, Value::Cat("Camry"), Value::Cat("Camry"));
  double close = sim.AttributeSim(0, Value::Cat("Camry"), Value::Cat("Accord"));
  double far = sim.AttributeSim(0, Value::Cat("Camry"), Value::Cat("Viper"));
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_GT(close, far);
}

TEST_F(SimTest, NumericUsesRelativeDistance) {
  SimilarityFunction sim = MakeSim();
  EXPECT_DOUBLE_EQ(sim.AttributeSim(1, Value::Num(10000), Value::Num(10000)),
                   1.0);
  EXPECT_NEAR(sim.AttributeSim(1, Value::Num(10000), Value::Num(10500)),
              0.95, 1e-12);
  EXPECT_NEAR(sim.AttributeSim(1, Value::Num(10000), Value::Num(9500)),
              0.95, 1e-12);
}

TEST_F(SimTest, NumericDistanceClampedToZeroSimilarity) {
  SimilarityFunction sim = MakeSim();
  // |10000 − 60000| / 10000 = 5 → clamped distance 1 → similarity 0.
  EXPECT_DOUBLE_EQ(sim.AttributeSim(1, Value::Num(10000), Value::Num(60000)),
                   0.0);
}

TEST_F(SimTest, ZeroQueryValueUsesAbsoluteScale) {
  SimilarityFunction sim = MakeSim();
  EXPECT_DOUBLE_EQ(sim.AttributeSim(1, Value::Num(0), Value::Num(0)), 1.0);
  EXPECT_NEAR(sim.AttributeSim(1, Value::Num(0), Value::Num(0.5)), 0.5,
              1e-12);
}

TEST_F(SimTest, NullValuesScoreZero) {
  SimilarityFunction sim = MakeSim();
  EXPECT_DOUBLE_EQ(sim.AttributeSim(0, Value(), Value::Cat("Camry")), 0.0);
  EXPECT_DOUBLE_EQ(sim.AttributeSim(0, Value::Cat("Camry"), Value()), 0.0);
}

TEST_F(SimTest, QueryTupleSimWeightsOverBoundAttributes) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  Tuple exact({Value::Cat("Camry"), Value::Num(10000)});
  auto s = sim.QueryTupleSim(q, exact);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 1.0);
}

TEST_F(SimTest, QueryTupleSimBetweenZeroAndOne) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  for (const char* model : {"Camry", "Accord", "Viper"}) {
    for (double price : {9000.0, 10000.0, 60000.0}) {
      Tuple t({Value::Cat(model), Value::Num(price)});
      auto s = sim.QueryTupleSim(q, t);
      ASSERT_TRUE(s.ok());
      EXPECT_GE(*s, 0.0);
      EXPECT_LE(*s, 1.0);
    }
  }
}

TEST_F(SimTest, QueryTupleSimMonotoneInAttributeSim) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  Tuple closer({Value::Cat("Accord"), Value::Num(10000)});
  Tuple farther({Value::Cat("Viper"), Value::Num(10000)});
  EXPECT_GT(*sim.QueryTupleSim(q, closer), *sim.QueryTupleSim(q, farther));
}

TEST_F(SimTest, PartialBindingUsesOnlyBoundAttrs) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  q.Bind("Price", Value::Num(10000));
  // Model mismatch is invisible to a price-only query.
  Tuple t({Value::Cat("Viper"), Value::Num(10000)});
  EXPECT_DOUBLE_EQ(*sim.QueryTupleSim(q, t), 1.0);
}

TEST_F(SimTest, UnknownAttributeErrors) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  q.Bind("Bogus", Value::Num(1));
  EXPECT_FALSE(sim.QueryTupleSim(q, Tuple({Value::Cat("x"), Value::Num(1)}))
                   .ok());
}

TEST_F(SimTest, EmptyQueryScoresZero) {
  SimilarityFunction sim = MakeSim();
  ImpreciseQuery q;
  EXPECT_DOUBLE_EQ(*sim.QueryTupleSim(q, Tuple({Value::Cat("x"),
                                                Value::Num(1)})),
                   0.0);
}

TEST_F(SimTest, TupleTupleSimMatchesFullyBoundQuery) {
  SimilarityFunction sim = MakeSim();
  Tuple anchor({Value::Cat("Camry"), Value::Num(10000)});
  Tuple other({Value::Cat("Accord"), Value::Num(10500)});
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  EXPECT_NEAR(sim.TupleTupleSim(anchor, other, {0, 1}),
              *sim.QueryTupleSim(q, other), 1e-12);
}

TEST_F(SimTest, TupleTupleSimRestrictedAttrs) {
  SimilarityFunction sim = MakeSim();
  Tuple anchor({Value::Cat("Camry"), Value::Num(10000)});
  Tuple other({Value::Cat("Viper"), Value::Num(10000)});
  EXPECT_DOUBLE_EQ(sim.TupleTupleSim(anchor, other, {1}), 1.0);
  EXPECT_LT(sim.TupleTupleSim(anchor, other, {0}), 0.5);
  EXPECT_DOUBLE_EQ(sim.TupleTupleSim(anchor, other, {}), 0.0);
}

TEST_F(SimTest, MinMaxScaledUsesSampleRanges) {
  SimilarityFunction sim(&schema_, &ordering_, &vsim_,
                         NumericSimKind::kMinMaxScaled);
  sim.SetNumericRanges({{0, 0}, {0, 100000}});
  // |10000 − 60000| / 100000 = 0.5 → similarity 0.5, where the paper's
  // query-relative form would clamp to 0.
  EXPECT_NEAR(sim.AttributeSim(1, Value::Num(10000), Value::Num(60000)), 0.5,
              1e-12);
  EXPECT_DOUBLE_EQ(sim.AttributeSim(1, Value::Num(5), Value::Num(5)), 1.0);
}

TEST_F(SimTest, MinMaxWithoutRangeFallsBackToQueryRelative) {
  SimilarityFunction sim(&schema_, &ordering_, &vsim_,
                         NumericSimKind::kMinMaxScaled);
  // No ranges set → behave like the paper's formula.
  EXPECT_NEAR(sim.AttributeSim(1, Value::Num(10000), Value::Num(10500)), 0.95,
              1e-12);
}

TEST_F(SimTest, GaussianKernelDecaysSmoothly) {
  SimilarityFunction sim(&schema_, &ordering_, &vsim_,
                         NumericSimKind::kGaussian);
  double same = sim.AttributeSim(1, Value::Num(10000), Value::Num(10000));
  double close = sim.AttributeSim(1, Value::Num(10000), Value::Num(11000));
  double far = sim.AttributeSim(1, Value::Num(10000), Value::Num(20000));
  EXPECT_DOUBLE_EQ(same, 1.0);
  EXPECT_GT(close, far);
  EXPECT_GT(far, 0.0);  // never exactly zero
  EXPECT_LT(far, 0.01);
}

TEST_F(SimTest, NumericKindsAgreeOnExactMatch) {
  for (NumericSimKind kind : {NumericSimKind::kQueryRelative,
                              NumericSimKind::kMinMaxScaled,
                              NumericSimKind::kGaussian}) {
    SimilarityFunction sim(&schema_, &ordering_, &vsim_, kind);
    EXPECT_DOUBLE_EQ(sim.AttributeSim(1, Value::Num(123), Value::Num(123)),
                     1.0);
  }
}

TEST_F(SimTest, NullAnchorAttributeKeepsWeightButScoresZero) {
  SimilarityFunction sim = MakeSim();
  Tuple anchor({Value(), Value::Num(10000)});
  Tuple other({Value::Cat("Camry"), Value::Num(10000)});
  double s = sim.TupleTupleSim(anchor, other, {0, 1});
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, 0.0);
}

}  // namespace
}  // namespace aimq
