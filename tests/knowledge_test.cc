#include "core/knowledge.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/cardb.h"

namespace aimq {
namespace {

WebDatabase SmallDb() {
  CarDbSpec spec;
  spec.num_tuples = 3000;
  spec.seed = 21;
  return WebDatabase("CarDB", CarDbGenerator(spec).Generate());
}

TEST(KnowledgeTest, BuildKnowledgeProducesAllParts) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  options.collector.sample_size = 1500;
  auto k = BuildKnowledge(db, options);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  EXPECT_EQ(k->sample.NumTuples(), 1500u);
  EXPECT_FALSE(k->dependencies.afds.empty());
  EXPECT_FALSE(k->dependencies.keys.empty());
  EXPECT_EQ(k->ordering.relaxation_order().size(), 7u);
  // Every categorical attribute got a similarity model.
  for (size_t attr : db.schema().CategoricalIndices()) {
    EXPECT_FALSE(k->vsim.MinedValues(attr).empty()) << attr;
  }
  // Numeric attributes don't.
  for (size_t attr : db.schema().NumericIndices()) {
    EXPECT_TRUE(k->vsim.MinedValues(attr).empty()) << attr;
  }
}

TEST(KnowledgeTest, WimpVectorMatchesOrderingAndSumsToOne) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  options.collector.sample_size = 1000;
  auto k = BuildKnowledge(db, options);
  ASSERT_TRUE(k.ok());
  std::vector<double> wimp = k->WimpVector();
  ASSERT_EQ(wimp.size(), 7u);
  for (size_t a = 0; a < wimp.size(); ++a) {
    EXPECT_DOUBLE_EQ(wimp[a], k->ordering.Wimp(a));
  }
  EXPECT_NEAR(std::accumulate(wimp.begin(), wimp.end(), 0.0), 1.0, 1e-9);
}

TEST(KnowledgeTest, TimingsPopulated) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  options.collector.sample_size = 1000;
  OfflineTimings timings;
  auto k = BuildKnowledge(db, options, &timings);
  ASSERT_TRUE(k.ok());
  EXPECT_GT(timings.TotalSeconds(), 0.0);
  EXPECT_GE(timings.collect_seconds, 0.0);
  EXPECT_GT(timings.dependency_mining_seconds, 0.0);
  EXPECT_GE(timings.supertuple_seconds, 0.0);
  EXPECT_GE(timings.similarity_estimation_seconds, 0.0);
}

TEST(KnowledgeTest, FromSampleSkipsCollection) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  OfflineTimings timings;
  auto k = BuildKnowledgeFromSample(db.hidden_relation_for_testing(), options,
                                    &timings);
  ASSERT_TRUE(k.ok());
  EXPECT_DOUBLE_EQ(timings.collect_seconds, 0.0);
  EXPECT_EQ(k->sample.NumTuples(), db.NumTuples());
  EXPECT_EQ(db.stats().queries_issued, 0u);  // the source was never probed
}

TEST(KnowledgeTest, ProbingOnlyTouchesTheBooleanInterface) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  options.collector.sample_size = 1000;
  ASSERT_TRUE(BuildKnowledge(db, options).ok());
  // Probing issued one query per spanning value.
  EXPECT_GT(db.stats().queries_issued, 0u);
  EXPECT_GT(db.stats().tuples_returned, 0u);
}

TEST(KnowledgeTest, DeterministicForFixedSeeds) {
  WebDatabase db = SmallDb();
  AimqOptions options;
  options.collector.sample_size = 1200;
  auto a = BuildKnowledge(db, options);
  auto b = BuildKnowledge(db, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sample.tuples(), b->sample.tuples());
  EXPECT_EQ(a->ordering.relaxation_order(), b->ordering.relaxation_order());
  ASSERT_EQ(a->dependencies.afds.size(), b->dependencies.afds.size());
  EXPECT_EQ(a->WimpVector(), b->WimpVector());
}

TEST(KnowledgeTest, EmptySampleFails) {
  Relation empty(CarDbGenerator::MakeSchema());
  EXPECT_FALSE(BuildKnowledgeFromSample(empty, AimqOptions{}).ok());
}

}  // namespace
}  // namespace aimq
