#include "webdb/web_database.h"

#include "webdb/data_collector.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Tuple Row(const std::string& make, const std::string& model, double price) {
  return Tuple({Value::Cat(make), Value::Cat(model), Value::Num(price)});
}

WebDatabase MakeDb() {
  Relation r(TestSchema());
  EXPECT_TRUE(r.Append(Row("Toyota", "Camry", 10000)).ok());
  EXPECT_TRUE(r.Append(Row("Toyota", "Corolla", 8000)).ok());
  EXPECT_TRUE(r.Append(Row("Honda", "Accord", 10000)).ok());
  EXPECT_TRUE(r.Append(Row("Honda", "Civic", 7000)).ok());
  EXPECT_TRUE(r.Append(Row("Ford", "Focus", 7000)).ok());
  return WebDatabase("TestDB", std::move(r));
}

TEST(WebDatabaseTest, ExecutesEqualityQuery) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("Toyota"))});
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(WebDatabaseTest, ExecutesConjunction) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("Honda")),
                    Predicate::Eq("Price", Value::Num(10000))});
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].At(1).AsCat(), "Accord");
}

TEST(WebDatabaseTest, ExecutesRangeQueryWithoutIndex) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate("Price", CompareOp::kLt, Value::Num(8000))});
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(WebDatabaseTest, IndexAndScanAgree) {
  WebDatabase db = MakeDb();
  // Equality on Price uses the index; combined with a range predicate the
  // result must match a pure-scan evaluation.
  SelectionQuery q({Predicate::Eq("Price", Value::Num(7000)),
                    Predicate("Price", CompareOp::kGt, Value::Num(0))});
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(WebDatabaseTest, EmptyResultForUnknownValue) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("BMW"))});
  auto r = db.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(WebDatabaseTest, RejectsLikePredicates) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate::Like("Make", Value::Cat("Toyota"))});
  auto r = db.Execute(q);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(WebDatabaseTest, RejectsUnknownAttribute) {
  WebDatabase db = MakeDb();
  SelectionQuery q({Predicate::Eq("Bogus", Value::Cat("x"))});
  EXPECT_FALSE(db.Execute(q).ok());
}

TEST(WebDatabaseTest, ProbeStatsAccumulate) {
  WebDatabase db = MakeDb();
  EXPECT_EQ(db.stats().queries_issued, 0u);
  ASSERT_TRUE(db.Execute(SelectionQuery(
                             {Predicate::Eq("Make", Value::Cat("Toyota"))}))
                  .ok());
  ASSERT_TRUE(db.Execute(SelectionQuery(
                             {Predicate::Eq("Make", Value::Cat("Honda"))}))
                  .ok());
  EXPECT_EQ(db.stats().queries_issued, 2u);
  EXPECT_EQ(db.stats().tuples_returned, 4u);
  db.ResetStats();
  EXPECT_EQ(db.stats().queries_issued, 0u);
}

TEST(WebDatabaseTest, FailedQueriesDoNotCount) {
  WebDatabase db = MakeDb();
  (void)db.Execute(SelectionQuery({Predicate::Like("Make", Value::Cat("x"))}));
  EXPECT_EQ(db.stats().queries_issued, 0u);
}

TEST(WebDatabaseTest, FormValuesSortedDistinct) {
  WebDatabase db = MakeDb();
  auto values = db.FormValues("Make");
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), 3u);
  EXPECT_EQ((*values)[0], Value::Cat("Ford"));
  EXPECT_EQ((*values)[1], Value::Cat("Honda"));
  EXPECT_EQ((*values)[2], Value::Cat("Toyota"));
}

TEST(WebDatabaseTest, FormValuesRejectNumericAttr) {
  WebDatabase db = MakeDb();
  EXPECT_FALSE(db.FormValues("Price").ok());
  EXPECT_FALSE(db.FormValues("Bogus").ok());
}

// A source that fails after a fixed number of probes — failure injection for
// everything built on the probing interface.
class FlakyWebDatabase : public WebDatabase {
 public:
  FlakyWebDatabase(Relation data, int budget)
      : WebDatabase("FlakyDB", std::move(data)), budget_(budget) {}

  Result<std::vector<uint32_t>> ExecuteRows(
      const SelectionQuery& query) const override {
    if (budget_-- <= 0) {
      return Status::IOError("connection reset by peer");
    }
    return WebDatabase::ExecuteRows(query);
  }

 private:
  mutable int budget_;
};

TEST(WebDatabaseTest, FailureInjectionPropagatesThroughCollector) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.Append(Row("Toyota", "Camry", 10000)).ok());
  ASSERT_TRUE(r.Append(Row("Honda", "Accord", 9000)).ok());
  FlakyWebDatabase flaky(std::move(r), /*budget=*/1);
  // Spanning the Make attribute needs 2 probes; the second one dies and the
  // collector must surface the transport error instead of returning a
  // partial sample.
  DataCollectorOptions opts;
  opts.spanning_attribute = "Make";
  DataCollector collector(opts);
  auto sample = collector.Collect(flaky);
  ASSERT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kIOError);
}

TEST(WebDatabaseTest, FailureInjectionRecoversWhenBudgetSuffices) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.Append(Row("Toyota", "Camry", 10000)).ok());
  ASSERT_TRUE(r.Append(Row("Honda", "Accord", 9000)).ok());
  FlakyWebDatabase flaky(std::move(r), /*budget=*/10);
  DataCollectorOptions opts;
  opts.spanning_attribute = "Make";
  auto sample = DataCollector(opts).Collect(flaky);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumTuples(), 2u);
}

TEST(WebDatabaseTest, SchemaAndCountExposed) {
  WebDatabase db = MakeDb();
  EXPECT_EQ(db.name(), "TestDB");
  EXPECT_EQ(db.NumTuples(), 5u);
  EXPECT_EQ(db.schema().NumAttributes(), 3u);
}

}  // namespace
}  // namespace aimq
