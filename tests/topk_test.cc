#include "util/topk.h"

#include <gtest/gtest.h>

#include <string>

namespace aimq {
namespace {

TEST(TopKTest, KeepsHighestScores) {
  TopK<std::string> topk(2);
  topk.Add(0.3, "low");
  topk.Add(0.9, "high");
  topk.Add(0.6, "mid");
  auto out = topk.Extract();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, "high");
  EXPECT_EQ(out[1].second, "mid");
}

TEST(TopKTest, ExtractSortedDescending) {
  TopK<int> topk(5);
  for (int i = 0; i < 5; ++i) topk.Add(i * 0.1, i);
  auto out = topk.Extract();
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].first, out[i].first);
  }
}

TEST(TopKTest, FewerItemsThanK) {
  TopK<int> topk(10);
  topk.Add(1.0, 1);
  topk.Add(2.0, 2);
  EXPECT_EQ(topk.Size(), 2u);
  EXPECT_EQ(topk.Extract().size(), 2u);
}

TEST(TopKTest, ZeroCapacityKeepsNothing) {
  TopK<int> topk(0);
  topk.Add(1.0, 1);
  EXPECT_EQ(topk.Size(), 0u);
  EXPECT_TRUE(topk.Extract().empty());
}

TEST(TopKTest, TiesFavorEarlierInsertion) {
  TopK<std::string> topk(1);
  topk.Add(0.5, "first");
  topk.Add(0.5, "second");
  auto out = topk.Extract();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, "first");
}

TEST(TopKTest, TieOrderInExtractIsInsertionOrder) {
  TopK<int> topk(3);
  topk.Add(0.5, 1);
  topk.Add(0.5, 2);
  topk.Add(0.5, 3);
  auto out = topk.Extract();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, 1);
  EXPECT_EQ(out[1].second, 2);
  EXPECT_EQ(out[2].second, 3);
}

TEST(TopKTest, MinScoreTracksWorstKept) {
  TopK<int> topk(2);
  topk.Add(0.9, 1);
  topk.Add(0.4, 2);
  EXPECT_DOUBLE_EQ(topk.MinScore(), 0.4);
  topk.Add(0.7, 3);
  EXPECT_DOUBLE_EQ(topk.MinScore(), 0.7);
}

TEST(TopKTest, WouldRejectWhenFullAndScoreTooLow) {
  TopK<int> topk(2);
  EXPECT_FALSE(topk.WouldReject(0.0));  // not full yet
  topk.Add(0.5, 1);
  topk.Add(0.8, 2);
  EXPECT_TRUE(topk.WouldReject(0.5));   // equal loses ties
  EXPECT_TRUE(topk.WouldReject(0.3));
  EXPECT_FALSE(topk.WouldReject(0.6));
}

TEST(TopKTest, MatchesFullSortReference) {
  TopK<int> topk(10);
  std::vector<std::pair<double, int>> all;
  // Deterministic pseudo-random scores.
  uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    double score = static_cast<double>(x % 10007) / 10007.0;
    topk.Add(score, i);
    all.emplace_back(score, i);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  auto out = topk.Extract();
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(out[i].first, all[i].first);
    EXPECT_EQ(out[i].second, all[i].second);
  }
}

}  // namespace
}  // namespace aimq
