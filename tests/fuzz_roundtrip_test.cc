// Randomized round-trip ("fuzz-lite") tests: CSV encode/decode, relation
// write/read, and query parse/print survive arbitrary content including
// delimiters, quotes, newlines and unicode bytes.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "query/parser.h"
#include "relation/relation.h"
#include "util/csv.h"
#include "util/rng.h"

namespace aimq {
namespace {

std::string RandomField(Rng* rng) {
  static const char kAlphabet[] =
      "abcXYZ 09,\"'\n\r\t|;:{}()\\\xc3\xa9\xe2\x82\xac-_";
  std::string out;
  size_t len = rng->Uniform(12);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, EncodeDecodeRowRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> fields;
    size_t n = 1 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) fields.push_back(RandomField(&rng));
    auto decoded = CsvDecodeRow(CsvEncodeRow(fields));
    ASSERT_TRUE(decoded.ok());
    // Single-row decode cannot represent embedded newlines (those need the
    // file-level reader), so compare with newline-bearing fields skipped.
    bool has_newline = false;
    for (const std::string& f : fields) {
      if (f.find('\n') != std::string::npos ||
          f.find('\r') != std::string::npos) {
        has_newline = true;
      }
    }
    if (!has_newline) {
      EXPECT_EQ(*decoded, fields);
    }
  }
}

TEST_P(CsvFuzzTest, FileRoundTripWithNastyFields) {
  Rng rng(GetParam() + 500);
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_fuzz_" + std::to_string(::getpid()) + "_" +
               std::to_string(GetParam()) + ".csv");
  std::vector<std::vector<std::string>> rows;
  size_t cols = 1 + rng.Uniform(4);
  for (int r = 0; r < 40; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < cols; ++c) {
      std::string f = RandomField(&rng);
      // The file reader treats \r\n and \n as row terminators inside quoted
      // fields identically only for \n; normalize CR out of the payload.
      std::string clean;
      for (char ch : f) {
        if (ch != '\r') clean += ch;
      }
      row.push_back(clean);
    }
    rows.push_back(std::move(row));
  }
  ASSERT_TRUE(CsvWriteFile(path.string(), rows).ok());
  auto back = CsvReadFile(path.string());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Values(1, 2, 3, 4));

class RelationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationFuzzTest, CsvRoundTripPreservesTuples) {
  Rng rng(GetParam());
  auto schema = Schema::Make({{"C", AttrType::kCategorical},
                              {"N", AttrType::kNumeric}});
  Relation r(*schema);
  for (int i = 0; i < 60; ++i) {
    // Categorical payloads avoid raw newlines (normalized by the reader) but
    // keep commas/quotes; empty string parses back as null, so skip it too.
    std::string f;
    do {
      f.clear();
      for (char ch : RandomField(&rng)) {
        if (ch != '\n' && ch != '\r') f += ch;
      }
    } while (f.empty());
    double num = std::round(rng.Gaussian(0, 1000) * 4.0) / 4.0;  // .25 steps
    ASSERT_TRUE(r.Append(Tuple({Value::Cat(f), Value::Num(num)})).ok());
  }
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_relfuzz_" + std::to_string(::getpid()) + "_" +
               std::to_string(GetParam()) + ".csv");
  ASSERT_TRUE(r.WriteCsv(path.string()).ok());
  auto back = Relation::ReadCsv(path.string(), *schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumTuples(), r.NumTuples());
  for (size_t i = 0; i < r.NumTuples(); ++i) {
    EXPECT_EQ(back->tuple(i).At(0), r.tuple(i).At(0)) << i;
    EXPECT_DOUBLE_EQ(back->tuple(i).At(1).AsNum(), r.tuple(i).At(1).AsNum());
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationFuzzTest, ::testing::Values(7, 8, 9));

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, ArbitraryInputNeverCrashes) {
  Rng rng(GetParam());
  auto schema = Schema::Make({{"Make", AttrType::kCategorical},
                              {"Price", AttrType::kNumeric}});
  QueryParser parser(&*schema);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input = RandomField(&rng) + RandomField(&rng);
    // Any outcome is fine; it must simply not crash and errors must carry a
    // message.
    auto p = parser.ParsePrecise(input);
    if (!p.ok()) {
      EXPECT_FALSE(p.status().message().empty());
    }
    auto i = parser.ParseImprecise(input);
    if (!i.ok()) {
      EXPECT_FALSE(i.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(11, 12));

}  // namespace
}  // namespace aimq
