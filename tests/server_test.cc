// AimqServer over a real socket: the NDJSON wire protocol end to end,
// including error responses and shutdown with open connections.

#include "service/server.h"

#include <gtest/gtest.h>

#include <string>

#include "datagen/cardb.h"
#include "service/wire.h"
#include "util/socket.h"
#include "util/stopwatch.h"

namespace aimq {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 300;
    options.tsim = 0.4;
    options.top_k = 5;
    options.num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, options);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.queue_depth = 16;
    service_ = new AimqService(db_, knowledge.TakeValue(), options, sopts);
    ASSERT_TRUE(service_->Start().ok());
    server_ = new AimqServer(service_, /*port=*/0);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }
  static void TearDownTestSuite() {
    server_->Stop();
    service_->Stop();
    delete server_;
    delete service_;
    delete db_;
    server_ = nullptr;
    service_ = nullptr;
    db_ = nullptr;
  }

  // Opens a client connection; the fixture's fd is closed per test.
  static int Connect() {
    auto fd = TcpConnect("localhost", server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  // One request line out, one response line (parsed) back.
  static Json RoundTrip(int fd, LineReader* reader, const std::string& line) {
    EXPECT_TRUE(SendAll(fd, line + "\n").ok());
    auto response = reader->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->has_value());
    auto json = Json::Parse(**response);
    EXPECT_TRUE(json.ok()) << json.status().ToString();
    return json.ok() ? json.TakeValue() : Json::Null();
  }

  static WebDatabase* db_;
  static AimqService* service_;
  static AimqServer* server_;
};

WebDatabase* ServerTest::db_ = nullptr;
AimqService* ServerTest::service_ = nullptr;
AimqServer* ServerTest::server_ = nullptr;

TEST_F(ServerTest, PingPongEchoesId) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const Json r = RoundTrip(fd, &reader, R"js({"op":"ping","id":42})js");
  EXPECT_EQ(r.Dump(), R"js({"id":42,"ok":true,"pong":true})js");
  CloseFd(fd);
}

TEST_F(ServerTest, QueryReturnsRankedAnswersOverTheWire) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const Json r =
      RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok() && *ok) << r.Dump();
  auto truncated = r.GetBool("truncated");
  ASSERT_TRUE(truncated.ok());
  EXPECT_FALSE(*truncated);
  const Json* answers = r.Find("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_TRUE(answers->is_array());
  ASSERT_GT(answers->AsArr().size(), 0u);
  for (const Json& a : answers->AsArr()) {
    const Json* tuple = a.Find("tuple");
    ASSERT_NE(tuple, nullptr);
    // Every answer tuple carries the full CarDB schema.
    EXPECT_NE(tuple->Find("Model"), nullptr);
    EXPECT_TRUE(a.GetNum("similarity").ok());
  }
  // Answers arrive ranked (descending similarity).
  const auto& arr = answers->AsArr();
  for (size_t i = 1; i < arr.size(); ++i) {
    EXPECT_GE(*arr[i - 1].GetNum("similarity"), *arr[i].GetNum("similarity"));
  }
  CloseFd(fd);
}

TEST_F(ServerTest, StatsReflectsServedQueries) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Civic')"})js");
  const Json r = RoundTrip(fd, &reader, R"js({"op":"stats"})js");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok() && *ok) << r.Dump();
  const Json* stats = r.Find("stats");
  ASSERT_NE(stats, nullptr);
  auto completed = stats->GetNum("completed");
  ASSERT_TRUE(completed.ok());
  EXPECT_GE(*completed, 1.0);
  ASSERT_NE(stats->Find("latency"), nullptr);
  CloseFd(fd);
}

TEST_F(ServerTest, ProtocolErrorsAnswerInBandAndKeepTheConnection) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  // Malformed JSON: in-band error, socket stays usable.
  Json r = RoundTrip(fd, &reader, "this is not json");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
  const Json* status_json = r.Find("status");
  ASSERT_NE(status_json, nullptr);
  Status decoded;
  ASSERT_TRUE(StatusFromJson(*status_json, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);

  // Unknown attribute: typed error with the id echoed.
  r = RoundTrip(fd, &reader,
                R"js({"op":"query","q":"Q(Bogus like 'x')","id":9})js");
  ASSERT_NE(r.Find("id"), nullptr);
  EXPECT_DOUBLE_EQ(r.Find("id")->AsNum(), 9.0);
  ASSERT_TRUE(r.GetBool("ok").ok());
  EXPECT_FALSE(*r.GetBool("ok"));
  ASSERT_NE(r.Find("status"), nullptr);
  Status wire_status;
  ASSERT_TRUE(StatusFromJson(*r.Find("status"), &wire_status).ok());
  EXPECT_FALSE(wire_status.ok());

  // The connection survived both errors.
  r = RoundTrip(fd, &reader, R"js({"op":"ping"})js");
  EXPECT_EQ(r.Dump(), R"js({"ok":true,"pong":true})js");
  CloseFd(fd);
}

TEST_F(ServerTest, StopWithIdleConnectionDoesNotHang) {
  // A dedicated server so Stop() here cannot disturb the shared fixture.
  ServiceOptions sopts;
  sopts.num_workers = 1;
  AimqOptions options;
  options.collector.sample_size = 300;
  options.tsim = 0.4;
  auto knowledge = BuildKnowledge(*db_, options);
  ASSERT_TRUE(knowledge.ok());
  AimqService service(db_, knowledge.TakeValue(), options, sopts);
  ASSERT_TRUE(service.Start().ok());
  AimqServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  auto fd = TcpConnect("localhost", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  LineReader reader(*fd);
  // Handshake once so the session thread is definitely up.
  EXPECT_TRUE(SendAll(*fd, "{\"op\":\"ping\"}\n").ok());
  ASSERT_TRUE(reader.ReadLine().ok());

  Stopwatch watch;
  server.Stop();  // must unblock the idle session's read
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
  // The peer observes the shutdown as EOF (or a reset error).
  auto eof = reader.ReadLine();
  if (eof.ok()) {
    EXPECT_FALSE(eof->has_value());
  }
  CloseFd(*fd);
  service.Stop();
}

}  // namespace
}  // namespace aimq
