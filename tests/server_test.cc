// AimqServer over a real socket: the NDJSON wire protocol end to end,
// including error responses and shutdown with open connections.

#include "service/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/cardb.h"
#include "service/wire.h"
#include "util/socket.h"
#include "util/stopwatch.h"

namespace aimq {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 300;
    options.tsim = 0.4;
    options.top_k = 5;
    options.num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, options);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.queue_depth = 16;
    service_ = new AimqService(db_, knowledge.TakeValue(), options, sopts);
    ASSERT_TRUE(service_->Start().ok());
    server_ = new AimqServer(service_, /*port=*/0);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }
  static void TearDownTestSuite() {
    server_->Stop();
    service_->Stop();
    delete server_;
    delete service_;
    delete db_;
    server_ = nullptr;
    service_ = nullptr;
    db_ = nullptr;
  }

  // Opens a client connection; the fixture's fd is closed per test.
  static int Connect() {
    auto fd = TcpConnect("localhost", server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  // One request line out, one response line (parsed) back.
  static Json RoundTrip(int fd, LineReader* reader, const std::string& line) {
    EXPECT_TRUE(SendAll(fd, line + "\n").ok());
    auto response = reader->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->has_value());
    auto json = Json::Parse(**response);
    EXPECT_TRUE(json.ok()) << json.status().ToString();
    return json.ok() ? json.TakeValue() : Json::Null();
  }

  // One HTTP GET against the wire port; returns every line (headers + body,
  // '\r' stripped) until the server closes the connection.
  static std::vector<std::string> HttpGet(int port, const std::string& path) {
    std::vector<std::string> lines;
    auto fd = TcpConnect("localhost", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) return lines;
    EXPECT_TRUE(
        SendAll(*fd, "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n").ok());
    LineReader reader(*fd);
    for (;;) {
      auto line = reader.ReadLine();
      if (!line.ok() || !line->has_value()) break;  // Connection: close
      lines.push_back(**line);
    }
    CloseFd(*fd);
    return lines;
  }

  static bool HasLinePrefix(const std::vector<std::string>& lines,
                            const std::string& prefix) {
    for (const std::string& line : lines) {
      if (line.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
  }

  static WebDatabase* db_;
  static AimqService* service_;
  static AimqServer* server_;
};

WebDatabase* ServerTest::db_ = nullptr;
AimqService* ServerTest::service_ = nullptr;
AimqServer* ServerTest::server_ = nullptr;

TEST_F(ServerTest, PingPongEchoesId) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const Json r = RoundTrip(fd, &reader, R"js({"op":"ping","id":42})js");
  EXPECT_EQ(r.Dump(), R"js({"id":42,"ok":true,"pong":true})js");
  CloseFd(fd);
}

TEST_F(ServerTest, QueryReturnsRankedAnswersOverTheWire) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const Json r =
      RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok() && *ok) << r.Dump();
  auto truncated = r.GetBool("truncated");
  ASSERT_TRUE(truncated.ok());
  EXPECT_FALSE(*truncated);
  const Json* answers = r.Find("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_TRUE(answers->is_array());
  ASSERT_GT(answers->AsArr().size(), 0u);
  for (const Json& a : answers->AsArr()) {
    const Json* tuple = a.Find("tuple");
    ASSERT_NE(tuple, nullptr);
    // Every answer tuple carries the full CarDB schema.
    EXPECT_NE(tuple->Find("Model"), nullptr);
    EXPECT_TRUE(a.GetNum("similarity").ok());
  }
  // Answers arrive ranked (descending similarity).
  const auto& arr = answers->AsArr();
  for (size_t i = 1; i < arr.size(); ++i) {
    EXPECT_GE(*arr[i - 1].GetNum("similarity"), *arr[i].GetNum("similarity"));
  }
  CloseFd(fd);
}

TEST_F(ServerTest, StatsReflectsServedQueries) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Civic')"})js");
  const Json r = RoundTrip(fd, &reader, R"js({"op":"stats"})js");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok() && *ok) << r.Dump();
  const Json* stats = r.Find("stats");
  ASSERT_NE(stats, nullptr);
  auto completed = stats->GetNum("completed");
  ASSERT_TRUE(completed.ok());
  EXPECT_GE(*completed, 1.0);
  ASSERT_NE(stats->Find("latency"), nullptr);
  CloseFd(fd);
}

TEST_F(ServerTest, ProtocolErrorsAnswerInBandAndKeepTheConnection) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  // Malformed JSON: in-band error, socket stays usable.
  Json r = RoundTrip(fd, &reader, "this is not json");
  auto ok = r.GetBool("ok");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(*ok);
  const Json* status_json = r.Find("status");
  ASSERT_NE(status_json, nullptr);
  Status decoded;
  ASSERT_TRUE(StatusFromJson(*status_json, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInvalidArgument);

  // Unknown attribute: typed error with the id echoed.
  r = RoundTrip(fd, &reader,
                R"js({"op":"query","q":"Q(Bogus like 'x')","id":9})js");
  ASSERT_NE(r.Find("id"), nullptr);
  EXPECT_DOUBLE_EQ(r.Find("id")->AsNum(), 9.0);
  ASSERT_TRUE(r.GetBool("ok").ok());
  EXPECT_FALSE(*r.GetBool("ok"));
  ASSERT_NE(r.Find("status"), nullptr);
  Status wire_status;
  ASSERT_TRUE(StatusFromJson(*r.Find("status"), &wire_status).ok());
  EXPECT_FALSE(wire_status.ok());

  // The connection survived both errors.
  r = RoundTrip(fd, &reader, R"js({"op":"ping"})js");
  EXPECT_EQ(r.Dump(), R"js({"ok":true,"pong":true})js");
  CloseFd(fd);
}

TEST_F(ServerTest, QueryResponseCarriesRequestId) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  // Client-chosen correlation id round-trips.
  Json r = RoundTrip(
      fd, &reader,
      R"js({"op":"query","q":"Q(Model like 'Camry')","request_id":4242})js");
  ASSERT_TRUE(r.GetBool("ok").ok() && *r.GetBool("ok")) << r.Dump();
  ASSERT_NE(r.Find("request_id"), nullptr);
  EXPECT_DOUBLE_EQ(r.Find("request_id")->AsNum(), 4242.0);
  // Without one, the service assigns and reports a nonzero id.
  r = RoundTrip(fd, &reader,
                R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  ASSERT_NE(r.Find("request_id"), nullptr);
  EXPECT_GT(r.Find("request_id")->AsNum(), 0.0);
  CloseFd(fd);
}

TEST_F(ServerTest, MetricsOpAnswersSnapshot) {
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Civic')"})js");
  const Json r = RoundTrip(fd, &reader, R"js({"op":"metrics","id":5})js");
  ASSERT_TRUE(r.GetBool("ok").ok() && *r.GetBool("ok")) << r.Dump();
  EXPECT_DOUBLE_EQ(r.Find("id")->AsNum(), 5.0);
  const Json* metrics = r.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(*metrics->GetNum("completed"), 1.0);
  ASSERT_NE(metrics->Find("phases"), nullptr);
  EXPECT_NE(metrics->Find("phases")->Find("relax"), nullptr);
  CloseFd(fd);
}

TEST_F(ServerTest, HttpMetricsServesPrometheusText) {
  // Serve at least one query first so histograms have samples.
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  RoundTrip(fd, &reader, R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  CloseFd(fd);

  const auto lines = HttpGet(server_->port(), "/metrics");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "HTTP/1.1 200 OK");
  EXPECT_TRUE(HasLinePrefix(lines, "Content-Type: text/plain; version=0.0.4"));
  EXPECT_TRUE(HasLinePrefix(lines, "Content-Length: "));
  for (const char* family :
       {"# TYPE aimq_requests_accepted_total counter",
        "# TYPE aimq_request_latency_seconds histogram",
        "# TYPE aimq_phase_relax_seconds histogram",
        "# TYPE aimq_probe_cache_hit_rate gauge"}) {
    EXPECT_TRUE(HasLinePrefix(lines, family)) << "missing: " << family;
  }
  bool accepted_nonzero = false;
  for (const std::string& line : lines) {
    const std::string name = "aimq_requests_accepted_total ";
    if (line.compare(0, name.size(), name) == 0) {
      accepted_nonzero = std::stod(line.substr(name.size())) >= 1.0;
    }
  }
  EXPECT_TRUE(accepted_nonzero);
}

TEST_F(ServerTest, HttpMetricsJsonAndUnknownPath) {
  const auto json_lines = HttpGet(server_->port(), "/metrics.json");
  ASSERT_FALSE(json_lines.empty());
  EXPECT_EQ(json_lines[0], "HTTP/1.1 200 OK");
  EXPECT_TRUE(HasLinePrefix(json_lines, "Content-Type: application/json"));
  // Body is the last line: one JSON document.
  auto parsed = Json::Parse(json_lines.back());
  ASSERT_TRUE(parsed.ok()) << json_lines.back();
  EXPECT_NE(parsed->Find("accepted"), nullptr);

  const auto missing = HttpGet(server_->port(), "/nope");
  ASSERT_FALSE(missing.empty());
  EXPECT_EQ(missing[0], "HTTP/1.1 404 Not Found");

  // Tracing is off on the shared fixture, so /trace 404s.
  const auto trace = HttpGet(server_->port(), "/trace");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0], "HTTP/1.1 404 Not Found");

  // NDJSON sessions still work after HTTP ones.
  const int fd = Connect();
  ASSERT_GE(fd, 0);
  LineReader reader(fd);
  const Json r = RoundTrip(fd, &reader, R"js({"op":"ping"})js");
  EXPECT_EQ(r.Dump(), R"js({"ok":true,"pong":true})js");
  CloseFd(fd);
}

TEST_F(ServerTest, HttpTraceServesChromeJsonWhenTracingEnabled) {
  // Dedicated traced server; the shared fixture keeps tracing off.
  AimqOptions options;
  options.collector.sample_size = 300;
  options.tsim = 0.4;
  options.num_threads = 2;
  auto knowledge = BuildKnowledge(*db_, options);
  ASSERT_TRUE(knowledge.ok());
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.enable_tracing = true;
  AimqService service(db_, knowledge.TakeValue(), options, sopts);
  ASSERT_TRUE(service.Start().ok());
  AimqServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  auto traced_fd = TcpConnect("localhost", server.port());
  ASSERT_TRUE(traced_fd.ok());
  LineReader reader(*traced_fd);
  RoundTrip(*traced_fd, &reader,
            R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  CloseFd(*traced_fd);

  const auto lines = HttpGet(server.port(), "/trace");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "HTTP/1.1 200 OK");
  auto parsed = Json::Parse(lines.back());
  ASSERT_TRUE(parsed.ok()) << lines.back();
  const Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->AsArr().empty());

  server.Stop();
  service.Stop();
}

TEST_F(ServerTest, StopWithIdleConnectionDoesNotHang) {
  // A dedicated server so Stop() here cannot disturb the shared fixture.
  ServiceOptions sopts;
  sopts.num_workers = 1;
  AimqOptions options;
  options.collector.sample_size = 300;
  options.tsim = 0.4;
  auto knowledge = BuildKnowledge(*db_, options);
  ASSERT_TRUE(knowledge.ok());
  AimqService service(db_, knowledge.TakeValue(), options, sopts);
  ASSERT_TRUE(service.Start().ok());
  AimqServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  auto fd = TcpConnect("localhost", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  LineReader reader(*fd);
  // Handshake once so the session thread is definitely up.
  EXPECT_TRUE(SendAll(*fd, "{\"op\":\"ping\"}\n").ok());
  ASSERT_TRUE(reader.ReadLine().ok());

  Stopwatch watch;
  server.Stop();  // must unblock the idle session's read
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
  // The peer observes the shutdown as EOF (or a reset error).
  auto eof = reader.ReadLine();
  if (eof.ok()) {
    EXPECT_FALSE(eof->has_value());
  }
  CloseFd(*fd);
  service.Stop();
}

}  // namespace
}  // namespace aimq
