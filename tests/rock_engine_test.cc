#include "rock/rock_engine.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Color", AttrType::kCategorical}})
      .ValueOrDie();
}

Relation CarData() {
  Relation r(CarSchema());
  auto add = [&](const char* make, const char* model, const char* color,
                 int copies) {
    for (int i = 0; i < copies; ++i) {
      ASSERT_TRUE(r.Append(Tuple({Value::Cat(make), Value::Cat(model),
                                  Value::Cat(color)}))
                      .ok());
    }
  };
  add("Toyota", "Camry", "White", 6);
  add("Toyota", "Camry", "Black", 6);
  add("Toyota", "Corolla", "White", 6);
  add("Ford", "F150", "Red", 6);
  add("Ford", "Ranger", "Red", 6);
  return r;
}

RockEngine BuildEngine() {
  RockOptions opts;
  opts.theta = 0.45;
  opts.num_clusters = 2;
  opts.sample_size = 30;
  auto engine = RockEngine::Build(CarData(), opts);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return engine.TakeValue();
}

TEST(RockEngineTest, FindSimilarReturnsClusterMates) {
  RockEngine engine = BuildEngine();
  Tuple anchor({Value::Cat("Toyota"), Value::Cat("Camry"),
                Value::Cat("White")});
  auto similar = engine.FindSimilar(anchor, 5);
  ASSERT_TRUE(similar.ok()) << similar.status().ToString();
  ASSERT_FALSE(similar->empty());
  // Cluster mates of a Camry are Toyotas, not Fords.
  for (const RankedAnswer& a : *similar) {
    EXPECT_EQ(a.tuple.At(0).AsCat(), "Toyota");
  }
}

TEST(RockEngineTest, FindSimilarSortedDescending) {
  RockEngine engine = BuildEngine();
  Tuple anchor({Value::Cat("Ford"), Value::Cat("F150"), Value::Cat("Red")});
  auto similar = engine.FindSimilar(anchor, 10);
  ASSERT_TRUE(similar.ok());
  for (size_t i = 1; i < similar->size(); ++i) {
    EXPECT_GE((*similar)[i - 1].similarity, (*similar)[i].similarity);
  }
}

TEST(RockEngineTest, FindSimilarExcludesAnchorRow) {
  RockEngine engine = BuildEngine();
  Tuple anchor({Value::Cat("Toyota"), Value::Cat("Corolla"),
                Value::Cat("White")});
  auto similar = engine.FindSimilar(anchor, 3);
  ASSERT_TRUE(similar.ok());
  EXPECT_LE(similar->size(), 3u);
}

TEST(RockEngineTest, FindSimilarUnseenAnchorFallsBackToClosestCluster) {
  RockEngine engine = BuildEngine();
  Tuple anchor({Value::Cat("Toyota"), Value::Cat("Camry"),
                Value::Cat("Green")});  // color never seen
  auto similar = engine.FindSimilar(anchor, 5);
  ASSERT_TRUE(similar.ok());
  ASSERT_FALSE(similar->empty());
  EXPECT_EQ((*similar)[0].tuple.At(0).AsCat(), "Toyota");
}

TEST(RockEngineTest, FindSimilarRejectsArityMismatch) {
  RockEngine engine = BuildEngine();
  EXPECT_FALSE(engine.FindSimilar(Tuple({Value::Cat("x")}), 5).ok());
}

TEST(RockEngineTest, AnswerRanksByQueryItems) {
  RockEngine engine = BuildEngine();
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto answers = engine.Answer(q, 5);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_FALSE(answers->empty());
  EXPECT_EQ((*answers)[0].tuple.At(1).AsCat(), "Camry");
  for (size_t i = 1; i < answers->size(); ++i) {
    EXPECT_GE((*answers)[i - 1].similarity, (*answers)[i].similarity);
  }
}

TEST(RockEngineTest, AnswerWithNoExactMatchStillAnswers) {
  RockEngine engine = BuildEngine();
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Color", Value::Cat("Red"));  // no red Camry exists
  auto answers = engine.Answer(q, 5);
  ASSERT_TRUE(answers.ok());
  EXPECT_FALSE(answers->empty());
}

TEST(RockEngineTest, AnswerValidatesQuery) {
  RockEngine engine = BuildEngine();
  ImpreciseQuery empty;
  EXPECT_FALSE(engine.Answer(empty, 5).ok());
  ImpreciseQuery bad;
  bad.Bind("Bogus", Value::Cat("x"));
  EXPECT_FALSE(engine.Answer(bad, 5).ok());
}

}  // namespace
}  // namespace aimq
