// Oracle tests for the packed (block-stored) ColumnarRelation mode: for one
// row stream, the streaming ColumnarBuilder must produce a snapshot
// bit-identical to the plain in-memory constructor — same dictionaries, same
// codes, same numerics, same canonical rows, same engine answers — in every
// storage configuration (in-memory, compressed, budgeted, spilled, and
// after a spill-file reopen). Also covers the satellites that feed the
// packed path: CarDB streaming determinism, ValueDict::Reserve, supertuple
// bag spilling, and ParseByteSize.

#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/knowledge.h"
#include "datagen/cardb.h"
#include "relation/columnar.h"
#include "relation/relation.h"
#include "relation/value_dict.h"
#include "similarity/supertuple.h"
#include "similarity/value_similarity.h"
#include "storage/spill_file.h"
#include "util/rng.h"
#include "util/strings.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

std::string TempPath(const char* stem) {
  return std::string("/tmp/aimq_") + stem + "_" +
         std::to_string(::getpid());
}

Relation SmallCarDb(size_t n, uint64_t seed = 2006) {
  CarDbSpec spec;
  spec.num_tuples = n;
  spec.seed = seed;
  return CarDbGenerator(spec).Generate();
}

Result<std::shared_ptr<const ColumnarRelation>> PackedCarDb(
    size_t n, ColumnarBuilder::Options opts, uint64_t seed = 2006) {
  CarDbSpec spec;
  spec.num_tuples = n;
  spec.seed = seed;
  return CarDbGenerator(spec).GenerateColumnar(opts);
}

// Full structural equality of a packed snapshot against the plain oracle.
void ExpectBitIdentical(const ColumnarRelation& plain,
                        const ColumnarRelation& packed) {
  ASSERT_EQ(plain.NumRows(), packed.NumRows());
  ASSERT_EQ(plain.NumAttributes(), packed.NumAttributes());
  for (size_t a = 0; a < plain.NumAttributes(); ++a) {
    ASSERT_EQ(plain.dict(a).size(), packed.dict(a).size()) << "attr " << a;
    for (uint32_t c = 0; c < plain.dict(a).size(); ++c) {
      EXPECT_EQ(plain.dict(a).value(c), packed.dict(a).value(c))
          << "attr " << a << " code " << c;
    }
  }
  const bool numeric_check = plain.NumRows() < 1u << 20;
  for (size_t a = 0; a < plain.NumAttributes(); ++a) {
    const bool is_num = plain.schema().attribute(a).type == AttrType::kNumeric;
    for (size_t r = 0; r < plain.NumRows(); ++r) {
      ASSERT_EQ(plain.CodeAt(a, r), packed.CodeAt(a, r))
          << "attr " << a << " row " << r;
      if (is_num && numeric_check) {
        ASSERT_EQ(plain.NumAt(a, r), packed.NumAt(a, r))
            << "attr " << a << " row " << r;
      }
    }
  }
  for (size_t r = 0; r < plain.NumRows(); ++r) {
    ASSERT_EQ(plain.CanonicalRow(static_cast<uint32_t>(r)),
              packed.CanonicalRow(static_cast<uint32_t>(r)))
        << "row " << r;
  }
}

TEST(PackedRelationTest, BitIdenticalToPlainInMemory) {
  const Relation rows = SmallCarDb(5000);
  const ColumnarRelation plain(rows);
  auto packed = PackedCarDb(5000, ColumnarBuilder::Options{});
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  ASSERT_TRUE((*packed)->packed());
  ExpectBitIdentical(plain, **packed);
}

TEST(PackedRelationTest, BitIdenticalUnderCodecBudgetAndSpill) {
  const Relation rows = SmallCarDb(5000);
  const ColumnarRelation plain(rows);
  ColumnarBuilder::Options opts;
  opts.store.block_size = 512;  // many blocks at this scale
  opts.store.codec = storage::CodecKind::kLite;
  opts.store.budget_bytes = 64 << 10;  // far below the decoded footprint
  opts.store.spill_path = TempPath("packed_rel_spill");
  auto packed = PackedCarDb(5000, opts);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  ExpectBitIdentical(plain, **packed);
  const storage::BlockStoreStats stats = (*packed)->block_store()->GetStats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_EQ(stats.spilled_bytes, stats.stored_bytes);

  // Cold restart: close + reopen the spill file, answers unchanged.
  auto* store =
      const_cast<ColumnarRelation*>(packed->get())->mutable_block_store();
  ASSERT_TRUE(store->ReopenSpill().ok());
  ExpectBitIdentical(plain, **packed);
}

TEST(PackedRelationTest, WindowScanMatchesRandomAccess) {
  ColumnarBuilder::Options opts;
  opts.store.block_size = 256;
  auto packed = PackedCarDb(3000, opts);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  const ColumnarRelation& cols = **packed;
  std::vector<size_t> attrs;
  for (size_t a = 0; a < cols.NumAttributes(); ++a) attrs.push_back(a);
  size_t seen = 0;
  ColumnarRelation::CodeWindow w;
  for (auto cur = cols.ScanBlocks(attrs); cur.Next(&w);) {
    ASSERT_EQ(w.begin_row, seen);
    for (size_t i = 0; i < w.num_rows; ++i) {
      for (size_t j = 0; j < attrs.size(); ++j) {
        ASSERT_EQ(w.codes[j][i], cols.CodeAt(attrs[j], w.begin_row + i));
      }
    }
    seen += w.num_rows;
  }
  EXPECT_EQ(seen, cols.NumRows());
}

TEST(PackedRelationTest, MaterializeTupleMatchesGenerate) {
  const Relation rows = SmallCarDb(1000);
  ColumnarBuilder::Options opts;
  opts.store.block_size = 128;
  auto packed = PackedCarDb(1000, opts);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  for (size_t r = 0; r < rows.NumTuples(); ++r) {
    EXPECT_EQ(rows.tuple(r), (*packed)->MaterializeTuple(r)) << "row " << r;
  }
}

// A WebDatabase built from a packed snapshot (tiny budget, spilled, lite
// codec) must answer imprecise queries exactly like the row-store database,
// through offline learning and guided relaxation alike — and keep doing so
// after the spill file is closed and reopened.
TEST(PackedRelationEngineTest, AnswersIdenticalToPlainDatabase) {
  constexpr size_t kTuples = 2000;
  AimqOptions options;
  options.tsim = 0.5;
  options.top_k = 10;
  options.tane.error_threshold = 0.30;
  options.tane.max_lhs_size = 3;
  options.tane.max_key_size = 4;
  options.collector.sample_size = 500;

  WebDatabase plain_db("CarDB", SmallCarDb(kTuples));
  auto plain_knowledge = BuildKnowledge(plain_db, options);
  ASSERT_TRUE(plain_knowledge.ok()) << plain_knowledge.status().ToString();
  AimqEngine plain_engine(&plain_db, plain_knowledge.TakeValue(), options);

  ColumnarBuilder::Options copts;
  copts.store.block_size = 256;
  copts.store.codec = storage::CodecKind::kLite;
  copts.store.budget_bytes = 32 << 10;
  copts.store.spill_path = TempPath("packed_engine_spill");
  auto packed = PackedCarDb(kTuples, copts);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  WebDatabase packed_db("CarDB", *packed);
  EXPECT_EQ(packed_db.NumTuples(), kTuples);
  auto packed_knowledge = BuildKnowledge(packed_db, options);
  ASSERT_TRUE(packed_knowledge.ok()) << packed_knowledge.status().ToString();
  AimqEngine packed_engine(&packed_db, packed_knowledge.TakeValue(), options);

  Rng rng(7);
  const std::vector<size_t> anchors =
      rng.SampleWithoutReplacement(kTuples, 3);
  auto run_queries = [&](AimqEngine& engine, WebDatabase& db) {
    std::vector<std::vector<RankedAnswer>> all;
    for (size_t row : anchors) {
      auto result =
          engine.FindSimilar(db.MaterializeRow(static_cast<uint32_t>(row)),
                             10, options.tsim, RelaxationStrategy::kGuided);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      all.push_back(result.ok() ? result.TakeValue()
                                : std::vector<RankedAnswer>{});
    }
    return all;
  };
  auto expect_same = [](const std::vector<std::vector<RankedAnswer>>& a,
                        const std::vector<std::vector<RankedAnswer>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].size(), b[i].size()) << "anchor " << i;
      for (size_t r = 0; r < a[i].size(); ++r) {
        EXPECT_EQ(a[i][r].tuple, b[i][r].tuple);
        EXPECT_EQ(a[i][r].similarity, b[i][r].similarity);
      }
    }
  };

  const auto plain_answers = run_queries(plain_engine, plain_db);
  const auto packed_answers = run_queries(packed_engine, packed_db);
  expect_same(plain_answers, packed_answers);

  // Cold restart of the spill file; same engine, same answers.
  ASSERT_TRUE(packed_db.columnar() != nullptr);
  auto* store = const_cast<ColumnarRelation*>(packed_db.columnar().get())
                    ->mutable_block_store();
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->ReopenSpill().ok());
  packed_engine.SetProbeCache(nullptr);  // force fresh scans
  expect_same(plain_answers, run_queries(packed_engine, packed_db));
}

TEST(CarDbStreamTest, StreamTuplesMatchesGenerate) {
  CarDbSpec spec;
  spec.num_tuples = 1500;
  spec.seed = 99;
  const CarDbGenerator gen(spec);
  const Relation batch = gen.Generate();
  std::vector<Tuple> streamed;
  ASSERT_TRUE(gen.StreamTuples([&](std::vector<Value>&& values) {
                   streamed.emplace_back(std::move(values));
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(streamed.size(), batch.NumTuples());
  for (size_t r = 0; r < streamed.size(); ++r) {
    EXPECT_EQ(batch.tuple(r), streamed[r]) << "row " << r;
  }
}

TEST(CarDbStreamTest, EmitterErrorAborts) {
  CarDbSpec spec;
  spec.num_tuples = 100;
  const CarDbGenerator gen(spec);
  size_t emitted = 0;
  Status st = gen.StreamTuples([&](std::vector<Value>&&) {
    if (++emitted == 10) return Status::InvalidArgument("stop");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(emitted, 10u);
}

TEST(ValueDictReserveTest, ReserveDoesNotChangeCodes) {
  const Relation rows = SmallCarDb(500);
  ValueDict baseline;
  ValueDict reserved;
  reserved.Reserve(1024);
  for (size_t r = 0; r < rows.NumTuples(); ++r) {
    const Value& v = rows.tuple(r).At(CarDbGenerator::kModel);
    EXPECT_EQ(baseline.Intern(v), reserved.Intern(v));
  }
  ASSERT_EQ(baseline.size(), reserved.size());
  for (uint32_t c = 0; c < baseline.size(); ++c) {
    EXPECT_EQ(baseline.value(c), reserved.value(c));
  }
}

TEST(ParseByteSizeTest, AcceptsSizesAndSuffixes) {
  struct Case {
    const char* in;
    size_t want;
  };
  const Case cases[] = {
      {"0", 0},
      {"123", 123},
      {"123b", 123},
      {"1k", 1024},
      {"1kb", 1024},
      {"1kib", 1024},
      {"64MB", 64u << 20},
      {"64mb", 64u << 20},
      {"2g", 2ull << 30},
      {"1t", 1ull << 40},
      {"  10 ", 10},
  };
  for (const Case& c : cases) {
    size_t got = SIZE_MAX;
    EXPECT_TRUE(ParseByteSize(c.in, &got)) << c.in;
    EXPECT_EQ(got, c.want) << c.in;
  }
}

TEST(ParseByteSizeTest, RejectsMalformedAndOverflow) {
  const char* bad[] = {"",   "abc",  "12q",   "mb",  "-1",
                       "1.5", "1 0k", "99999999999999999999", "17t0"};
  for (const char* in : bad) {
    size_t got = 0;
    EXPECT_FALSE(ParseByteSize(in, &got)) << in;
  }
  size_t got = 0;
  EXPECT_FALSE(ParseByteSize("999999999999t", &got));  // shift overflow
}

TEST(SuperTupleBagSpillTest, SpillLoadRoundTripIsExact) {
  const Relation rows = SmallCarDb(1000);
  SuperTupleBuilder builder(rows, SuperTupleOptions{});
  auto sts = builder.BuildAll(CarDbGenerator::kMake);
  ASSERT_TRUE(sts.ok()) << sts.status().ToString();
  ASSERT_FALSE(sts->empty());

  auto reference = builder.BuildAll(CarDbGenerator::kMake);
  ASSERT_TRUE(reference.ok());

  auto spill = storage::SpillFile::Create(TempPath("bag_spill"));
  ASSERT_TRUE(spill.ok()) << spill.status().ToString();
  std::vector<uint64_t> offsets;
  for (SuperTuple& st : *sts) {
    auto offset = st.SpillBags(spill->get());
    ASSERT_TRUE(offset.ok()) << offset.status().ToString();
    EXPECT_TRUE(st.bags_spilled());
    offsets.push_back(offset.ValueOrDie());
  }
  for (size_t i = 0; i < sts->size(); ++i) {
    ASSERT_TRUE((*sts)[i].LoadBags(**spill, offsets[i]).ok());
    EXPECT_FALSE((*sts)[i].bags_spilled());
    for (size_t a = 0; a < rows.schema().NumAttributes(); ++a) {
      EXPECT_EQ((*sts)[i].coded_bag(a).entries(),
                (*reference)[i].coded_bag(a).entries())
          << "supertuple " << i << " attr " << a;
    }
  }
}

TEST(SuperTupleBagSpillTest, MinerWithBagSpillMatchesResidentModel) {
  const Relation rows = SmallCarDb(800);
  std::vector<double> wimp(rows.schema().NumAttributes(),
                           1.0 / rows.schema().NumAttributes());
  SimilarityMinerOptions resident_opts;
  resident_opts.num_threads = 2;
  SimilarityMinerOptions spill_opts = resident_opts;
  spill_opts.bag_spill_path = TempPath("miner_bag_spill");

  auto resident = SimilarityMiner(resident_opts)
                      .MineAttributes(rows, wimp, {CarDbGenerator::kMake});
  auto spilled = SimilarityMiner(spill_opts)
                     .MineAttributes(rows, wimp, {CarDbGenerator::kMake});
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();

  const std::vector<Value> makes =
      rows.DistinctValues(CarDbGenerator::kMake);
  ASSERT_GT(makes.size(), 1u);
  for (size_t i = 0; i < makes.size(); ++i) {
    for (size_t j = 0; j < makes.size(); ++j) {
      EXPECT_EQ(
          resident->VSim(CarDbGenerator::kMake, makes[i], makes[j]),
          spilled->VSim(CarDbGenerator::kMake, makes[i], makes[j]))
          << makes[i].ToString() << " vs " << makes[j].ToString();
    }
  }
}

}  // namespace
}  // namespace aimq
