#include "similarity/value_similarity.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Segment", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

// Toyota and Honda sell sedans in the same price band; Harley sells bikes at
// a very different price point.
Relation ThreeMakes() {
  Relation r(CarSchema());
  auto add = [&](const char* make, const char* seg, double price) {
    ASSERT_TRUE(
        r.Append(Tuple({Value::Cat(make), Value::Cat(seg), Value::Num(price)}))
            .ok());
  };
  add("Toyota", "sedan", 10000);
  add("Toyota", "sedan", 11000);
  add("Toyota", "suv", 20000);
  add("Honda", "sedan", 10500);
  add("Honda", "sedan", 11500);
  add("Honda", "suv", 21000);
  add("Harley", "bike", 52000);
  add("Harley", "bike", 53000);
  add("Harley", "bike", 54000);
  return r;
}

std::vector<double> UniformWimp(size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(SimilarityMinerTest, SimilarDistributionsScoreHigher) {
  Relation r = ThreeMakes();
  SimilarityMiner miner;
  auto model = miner.Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  double toyota_honda =
      model->VSim(0, Value::Cat("Toyota"), Value::Cat("Honda"));
  double toyota_harley =
      model->VSim(0, Value::Cat("Toyota"), Value::Cat("Harley"));
  EXPECT_GT(toyota_honda, toyota_harley);
  EXPECT_GT(toyota_honda, 0.3);
  EXPECT_LT(toyota_harley, 0.2);
}

TEST(SimilarityMinerTest, IdenticalValuesHaveSimilarityOne) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->VSim(0, Value::Cat("Toyota"), Value::Cat("Toyota")),
                   1.0);
}

TEST(SimilarityMinerTest, SimilarityIsSymmetric) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->VSim(0, Value::Cat("Toyota"), Value::Cat("Honda")),
                   model->VSim(0, Value::Cat("Honda"), Value::Cat("Toyota")));
}

TEST(SimilarityMinerTest, SimilarityInUnitInterval) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  for (const Value& a : model->MinedValues(0)) {
    for (const Value& b : model->MinedValues(0)) {
      double s = model->VSim(0, a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(SimilarityMinerTest, UnknownValuesScoreZero) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->VSim(0, Value::Cat("Toyota"), Value::Cat("BMW")),
                   0.0);
  // Unknown attribute entirely.
  EXPECT_DOUBLE_EQ(model->VSim(2, Value::Cat("a"), Value::Cat("b")), 0.0);
}

TEST(SimilarityMinerTest, TopSimilarSortedDescending) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  auto top = model->TopSimilar(0, Value::Cat("Toyota"), 5);
  ASSERT_GE(top.size(), 1u);
  EXPECT_EQ(top[0].first, Value::Cat("Honda"));
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

TEST(SimilarityMinerTest, TopSimilarRespectsK) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->TopSimilar(0, Value::Cat("Toyota"), 1).size(), 1u);
  EXPECT_TRUE(model->TopSimilar(0, Value::Cat("Unknown"), 3).empty());
}

TEST(SimilarityMinerTest, MineAttributesSubset) {
  Relation r = ThreeMakes();
  SimilarityMiner miner;
  auto model = miner.MineAttributes(r, UniformWimp(3), {1});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->MinedValues(1).empty());
  EXPECT_TRUE(model->MinedValues(0).empty());
}

TEST(SimilarityMinerTest, WimpWeightsShiftScores) {
  Relation r = ThreeMakes();
  SimilarityMiner miner;
  // All weight on Segment: Toyota/Honda share the sedan+suv mix exactly.
  auto seg_model = miner.Mine(r, {0.0, 1.0, 0.0});
  ASSERT_TRUE(seg_model.ok());
  double seg_sim = seg_model->VSim(0, Value::Cat("Toyota"),
                                   Value::Cat("Honda"));
  // All weight on Price: bins are close but not identical.
  auto price_model = miner.Mine(r, {0.0, 0.0, 1.0});
  ASSERT_TRUE(price_model.ok());
  double price_sim =
      price_model->VSim(0, Value::Cat("Toyota"), Value::Cat("Honda"));
  EXPECT_GT(seg_sim, 0.99);
  EXPECT_LT(price_sim, seg_sim);
}

TEST(SimilarityMinerTest, TimingsReported) {
  Relation r = ThreeMakes();
  SimilarityTimings timings;
  auto model = SimilarityMiner().Mine(r, UniformWimp(3), &timings);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(timings.supertuple_seconds, 0.0);
  EXPECT_GE(timings.estimation_seconds, 0.0);
}

TEST(SimilarityMinerTest, InputValidation) {
  Relation r = ThreeMakes();
  SimilarityMiner miner;
  EXPECT_FALSE(miner.Mine(r, UniformWimp(2)).ok());  // wrong wimp size
  Relation empty(CarSchema());
  EXPECT_FALSE(miner.Mine(empty, UniformWimp(3)).ok());
  EXPECT_FALSE(miner.MineAttributes(r, UniformWimp(3), {99}).ok());
}

TEST(SimilarityMinerTest, NumStoredPairsCountsOffDiagonal) {
  Relation r = ThreeMakes();
  auto model = SimilarityMiner().Mine(r, UniformWimp(3));
  ASSERT_TRUE(model.ok());
  // Make: 3 values → at most 3 pairs; Segment: 3 values → at most 3 pairs.
  EXPECT_LE(model->NumStoredPairs(), 6u);
  EXPECT_GE(model->NumStoredPairs(), 1u);
}

}  // namespace
}  // namespace aimq
