#include "util/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/parallel.h"

namespace aimq {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min_seconds, 0.0);
  EXPECT_EQ(snap.max_seconds, 0.0);
  EXPECT_EQ(snap.MeanSeconds(), 0.0);
}

TEST(LatencyHistogramTest, SingleValueClampsPercentilesToObservedMax) {
  LatencyHistogram h;
  h.Record(0.010);  // 10ms
  EXPECT_EQ(h.count(), 1u);
  // Every percentile of a single-value histogram is that value, not the
  // (coarser) bucket upper bound.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.010);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 0.010);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBracketData) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<double>(i) * 1e-4);  // 0.1ms .. 100ms uniform
  }
  const double p50 = h.Percentile(0.50);
  const double p95 = h.Percentile(0.95);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucket resolution is 25%: p50 of uniform(0, 100ms) must land near 50ms.
  EXPECT_GT(p50, 0.030);
  EXPECT_LT(p50, 0.070);
  EXPECT_GT(p99, 0.070);
  EXPECT_LE(p99, 0.100);
}

TEST(LatencyHistogramTest, SnapshotAggregatesMatch) {
  LatencyHistogram h;
  h.Record(0.001);
  h.Record(0.003);
  h.Record(0.002);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum_seconds, 0.006, 1e-6);
  EXPECT_NEAR(snap.min_seconds, 0.001, 1e-6);
  EXPECT_NEAR(snap.max_seconds, 0.003, 1e-6);
  EXPECT_NEAR(snap.MeanSeconds(), 0.002, 1e-6);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, 3u);
}

TEST(LatencyHistogramTest, NegativeAndHugeDurationsAreClamped) {
  LatencyHistogram h;
  h.Record(-1.0);     // clamps to 0
  h.Record(1e6);      // lands in the last bucket
  EXPECT_EQ(h.count(), 2u);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.min_seconds, 0.0);
  EXPECT_EQ(snap.bucket_counts.front(), 1u);
  EXPECT_EQ(snap.bucket_counts.back(), 1u);
}

TEST(LatencyHistogramTest, AllSamplesInOverflowBucketQuantiles) {
  // Every observation beyond the last finite bound: quantiles must stay
  // finite and clamp to the observed maximum, not fabricate a bound.
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(1e6);
  EXPECT_EQ(h.count(), 10u);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.bucket_counts.back(), 10u);
  const double p50 = h.Percentile(0.50);
  const double p99 = h.Percentile(0.99);
  EXPECT_TRUE(p50 > 0.0 && p50 <= snap.max_seconds);
  EXPECT_TRUE(p99 > 0.0 && p99 <= snap.max_seconds);
  EXPECT_LE(p50, p99);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr size_t kPerThread = 5000;
  ParallelFor(8, 8, [&](size_t t) {
    for (size_t i = 0; i < kPerThread; ++i) {
      h.Record(static_cast<double>(t + 1) * 1e-3);
    }
  });
  EXPECT_EQ(h.count(), 8 * kPerThread);
  HistogramSnapshot snap = h.Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, 8 * kPerThread);
  EXPECT_NEAR(snap.min_seconds, 0.001, 1e-6);
  EXPECT_NEAR(snap.max_seconds, 0.008, 1e-6);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
  EXPECT_EQ(h.Snapshot().max_seconds, 0.0);
}

TEST(LatencyHistogramTest, MergeFoldsCountsSumAndExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(0.001);
  a.Record(0.004);
  b.Record(0.002);
  b.Record(0.050);
  a.Merge(b);
  HistogramSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_NEAR(snap.sum_seconds, 0.057, 1e-6);
  EXPECT_NEAR(snap.min_seconds, 0.001, 1e-6);
  EXPECT_NEAR(snap.max_seconds, 0.050, 1e-6);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.bucket_counts) bucket_total += c;
  EXPECT_EQ(bucket_total, 4u);
  // The source is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(LatencyHistogramTest, MergeMinTakesSmallerSource) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(0.010);
  b.Record(0.0001);  // other's min is smaller — the CAS path must take it
  a.Merge(b);
  EXPECT_NEAR(a.Snapshot().min_seconds, 0.0001, 1e-7);
}

TEST(LatencyHistogramTest, MergeEmptySourceIsANoOp) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.Record(0.003);
  a.Merge(empty);
  HistogramSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_NEAR(snap.min_seconds, 0.003, 1e-6);
  EXPECT_NEAR(snap.max_seconds, 0.003, 1e-6);
}

TEST(LatencyHistogramTest, MergeIntoEmptyAdoptsSourceExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  b.Record(0.002);
  b.Record(0.008);
  a.Merge(b);
  HistogramSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_NEAR(snap.min_seconds, 0.002, 1e-6);
  EXPECT_NEAR(snap.max_seconds, 0.008, 1e-6);
}

TEST(LatencyHistogramTest, QuantilesAfterMergeMatchUnifiedRecording) {
  // Per-worker histograms merged into one must answer quantile queries the
  // same as a single shared histogram fed every record.
  LatencyHistogram unified;
  LatencyHistogram workers[4];
  for (int w = 0; w < 4; ++w) {
    for (int i = 1; i <= 250; ++i) {
      const double v = static_cast<double>(w * 250 + i) * 1e-4;
      workers[w].Record(v);
      unified.Record(v);
    }
  }
  LatencyHistogram merged;
  for (LatencyHistogram& w : workers) merged.Merge(w);
  EXPECT_EQ(merged.count(), unified.count());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(q), unified.Percentile(q)) << q;
  }
  HistogramSnapshot ms = merged.Snapshot();
  HistogramSnapshot us = unified.Snapshot();
  EXPECT_NEAR(ms.sum_seconds, us.sum_seconds, 1e-6);
  EXPECT_EQ(ms.bucket_counts, us.bucket_counts);
}

TEST(LatencyHistogramTest, MergeConcurrentWithRecords) {
  LatencyHistogram target;
  LatencyHistogram sources[4];
  for (LatencyHistogram& s : sources) {
    for (int i = 0; i < 100; ++i) s.Record(0.001);
  }
  // Merges racing Record() on the target: counts must all land.
  ParallelFor(8, 8, [&](size_t t) {
    if (t < 4) {
      target.Merge(sources[t]);
    } else {
      for (int i = 0; i < 100; ++i) target.Record(0.002);
    }
  });
  EXPECT_EQ(target.count(), 800u);
}

TEST(LatencyHistogramTest, BucketBoundsGrowGeometrically) {
  EXPECT_NEAR(LatencyHistogram::BucketUpperBound(0), 1e-6, 1e-12);
  for (size_t i = 1; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_NEAR(LatencyHistogram::BucketUpperBound(i) /
                    LatencyHistogram::BucketUpperBound(i - 1),
                1.25, 1e-9);
  }
}

}  // namespace
}  // namespace aimq
