#include "afd/tane.h"

#include <gtest/gtest.h>

#include "afd/miner.h"

namespace aimq {
namespace {

Schema Abc() {
  return Schema::Make({{"A", AttrType::kCategorical},
                       {"B", AttrType::kCategorical},
                       {"C", AttrType::kCategorical}})
      .ValueOrDie();
}

Relation FromRows(const Schema& schema,
                  const std::vector<std::vector<const char*>>& rows) {
  Relation r(schema);
  for (const auto& row : rows) {
    std::vector<Value> vals;
    for (const char* c : row) vals.push_back(Value::Cat(c));
    EXPECT_TRUE(r.Append(Tuple(std::move(vals))).ok());
  }
  return r;
}

const Afd* FindAfd(const MinedDependencies& deps, AttrSet lhs, size_t rhs) {
  for (const Afd& a : deps.afds) {
    if (a.lhs == lhs && a.rhs == rhs) return &a;
  }
  return nullptr;
}

const AKey* FindKey(const MinedDependencies& deps, AttrSet attrs) {
  for (const AKey& k : deps.keys) {
    if (k.attrs == attrs) return &k;
  }
  return nullptr;
}

TEST(TaneTest, FindsExactFd) {
  // A → B holds exactly; B → A does not (B=1 maps to x and y).
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "1", "q"},
                                {"y", "1", "p"},
                                {"y", "1", "q"},
                                {"z", "2", "p"},
                                {"z", "2", "q"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.prune_key_lhs = false;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  const Afd* ab = FindAfd(*deps, AttrBit(0), 1);
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->error, 0.0);
  EXPECT_DOUBLE_EQ(ab->Support(), 1.0);
  EXPECT_EQ(FindAfd(*deps, AttrBit(1), 0), nullptr);
}

TEST(TaneTest, ApproximateFdWithinThreshold) {
  // A → B violated by exactly 1 of 8 rows (error 0.125).
  Relation r = FromRows(Abc(), {{"x", "1", "a"},
                                {"x", "1", "b"},
                                {"x", "1", "c"},
                                {"x", "2", "d"},
                                {"y", "3", "a"},
                                {"y", "3", "b"},
                                {"y", "3", "c"},
                                {"y", "3", "d"}});
  TaneOptions opts;
  opts.error_threshold = 0.15;
  opts.prune_key_lhs = false;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  const Afd* ab = FindAfd(*deps, AttrBit(0), 1);
  ASSERT_NE(ab, nullptr);
  EXPECT_NEAR(ab->error, 0.125, 1e-12);

  // A lower threshold rejects it.
  opts.error_threshold = 0.10;
  auto strict = Tane::Mine(r, opts);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(FindAfd(*strict, AttrBit(0), 1), nullptr);
}

TEST(TaneTest, FindsCompositeLhsFd) {
  // Neither A nor B alone determines C, but {A,B} does.
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "1", "p"},
                                {"x", "2", "q"},
                                {"y", "1", "q"},
                                {"y", "1", "q"},
                                {"y", "2", "p"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.prune_key_lhs = false;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(FindAfd(*deps, AttrBit(0), 2), nullptr);
  EXPECT_EQ(FindAfd(*deps, AttrBit(1), 2), nullptr);
  const Afd* abc = FindAfd(*deps, AttrBit(0) | AttrBit(1), 2);
  ASSERT_NE(abc, nullptr);
  EXPECT_DOUBLE_EQ(abc->error, 0.0);
}

TEST(TaneTest, FindsExactAndApproximateKeys) {
  // A unique → exact key. B has one duplicate pair among 4 rows.
  Relation r = FromRows(Abc(), {{"w", "1", "p"},
                                {"x", "1", "p"},
                                {"y", "2", "p"},
                                {"z", "3", "p"}});
  TaneOptions opts;
  opts.error_threshold = 0.3;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  const AKey* ka = FindKey(*deps, AttrBit(0));
  ASSERT_NE(ka, nullptr);
  EXPECT_DOUBLE_EQ(ka->error, 0.0);
  EXPECT_TRUE(ka->minimal);
  const AKey* kb = FindKey(*deps, AttrBit(1));
  ASSERT_NE(kb, nullptr);
  EXPECT_DOUBLE_EQ(kb->error, 0.25);  // remove 1 of 4 rows
  // C is constant: terrible key, not mined at threshold 0.3.
  EXPECT_EQ(FindKey(*deps, AttrBit(2)), nullptr);
}

TEST(TaneTest, SupersetsOfKeysAreNonMinimal) {
  Relation r = FromRows(Abc(), {{"w", "1", "p"},
                                {"x", "1", "q"},
                                {"y", "2", "p"},
                                {"z", "3", "q"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.max_key_size = 3;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  const AKey* ab = FindKey(*deps, AttrBit(0) | AttrBit(1));
  ASSERT_NE(ab, nullptr);
  EXPECT_FALSE(ab->minimal);  // A alone is already a key
}

TEST(TaneTest, PruneKeyLhsDropsVacuousAfds) {
  // A is unique → every A→X AFD is vacuous.
  Relation r = FromRows(Abc(), {{"w", "1", "p"},
                                {"x", "1", "q"},
                                {"y", "2", "p"},
                                {"z", "2", "q"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.prune_key_lhs = true;
  auto pruned = Tane::Mine(r, opts);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(FindAfd(*pruned, AttrBit(0), 1), nullptr);

  opts.prune_key_lhs = false;
  auto unpruned = Tane::Mine(r, opts);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_NE(FindAfd(*unpruned, AttrBit(0), 1), nullptr);
}

TEST(TaneTest, MinimalOnlySuppressesRedundantSupersets) {
  // A → C exactly; then {A,B} → C is non-minimal.
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "2", "p"},
                                {"y", "1", "q"},
                                {"y", "2", "q"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.prune_key_lhs = false;
  opts.minimal_afds_only = true;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  EXPECT_NE(FindAfd(*deps, AttrBit(0), 2), nullptr);
  EXPECT_EQ(FindAfd(*deps, AttrBit(0) | AttrBit(1), 2), nullptr);

  opts.minimal_afds_only = false;
  auto all = Tane::Mine(r, opts);
  ASSERT_TRUE(all.ok());
  EXPECT_NE(FindAfd(*all, AttrBit(0) | AttrBit(1), 2), nullptr);
}

TEST(TaneTest, MaxLhsSizeLimitsSearch) {
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "2", "q"},
                                {"y", "1", "q"},
                                {"y", "2", "p"}});
  TaneOptions opts;
  opts.error_threshold = 0.0;
  opts.max_lhs_size = 1;
  opts.prune_key_lhs = false;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  for (const Afd& a : deps->afds) {
    EXPECT_LE(a.LhsSize(), 1u);
  }
}

TEST(TaneTest, MinGainFiltersSkewDominatedAfds) {
  // C is "p" for 7 of 8 rows: every X→C holds at error <= 0.125 merely
  // because of the skew; min_gain must discard those vacuous AFDs while an
  // informative one (A→B) survives.
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "1", "p"},
                                {"x", "1", "p"},
                                {"x", "1", "p"},
                                {"y", "2", "p"},
                                {"y", "2", "p"},
                                {"y", "2", "p"},
                                {"y", "2", "q"}});
  TaneOptions opts;
  opts.error_threshold = 0.2;
  opts.prune_key_lhs = false;
  opts.min_gain = 0.3;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  EXPECT_EQ(FindAfd(*deps, AttrBit(0), 2), nullptr);  // A→C vacuous
  EXPECT_NE(FindAfd(*deps, AttrBit(0), 1), nullptr);  // A→B real

  opts.min_gain = 0.0;
  auto unfiltered = Tane::Mine(r, opts);
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_NE(FindAfd(*unfiltered, AttrBit(0), 2), nullptr);
}

TEST(TaneTest, SeparateKeyThreshold) {
  // B has 1 duplicate in 4 rows (key error 0.25). A wide AFD threshold must
  // not force that weak key in when key_error_threshold is strict.
  Relation r = FromRows(Abc(), {{"w", "1", "p"},
                                {"x", "1", "q"},
                                {"y", "2", "r"},
                                {"z", "3", "s"}});
  TaneOptions opts;
  opts.error_threshold = 0.5;
  opts.key_error_threshold = 0.1;
  auto deps = Tane::Mine(r, opts);
  ASSERT_TRUE(deps.ok());
  EXPECT_NE(FindKey(*deps, AttrBit(0)), nullptr);  // A unique
  EXPECT_EQ(FindKey(*deps, AttrBit(1)), nullptr);  // B error 0.25 > 0.1

  opts.key_error_threshold = -1.0;  // fall back to error_threshold
  auto loose = Tane::Mine(r, opts);
  ASSERT_TRUE(loose.ok());
  EXPECT_NE(FindKey(*loose, AttrBit(1)), nullptr);
}

TEST(TaneTest, RejectsBadInputs) {
  Relation empty(Abc());
  EXPECT_FALSE(Tane::Mine(empty, TaneOptions{}).ok());

  Relation r = FromRows(Abc(), {{"x", "1", "p"}});
  TaneOptions bad;
  bad.error_threshold = 1.5;
  EXPECT_FALSE(Tane::Mine(r, bad).ok());
  bad = TaneOptions{};
  bad.max_lhs_size = 0;
  EXPECT_FALSE(Tane::Mine(r, bad).ok());
}

TEST(TaneTest, DeterministicOutputOrder) {
  Relation r = FromRows(Abc(), {{"x", "1", "p"},
                                {"x", "1", "q"},
                                {"y", "2", "p"},
                                {"y", "2", "q"},
                                {"z", "2", "p"}});
  TaneOptions opts;
  opts.error_threshold = 0.4;
  auto a = Tane::Mine(r, opts);
  auto b = Tane::Mine(r, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->afds.size(), b->afds.size());
  for (size_t i = 0; i < a->afds.size(); ++i) {
    EXPECT_EQ(a->afds[i].lhs, b->afds[i].lhs);
    EXPECT_EQ(a->afds[i].rhs, b->afds[i].rhs);
  }
  // Sorted by LHS size first.
  for (size_t i = 1; i < a->afds.size(); ++i) {
    EXPECT_LE(a->afds[i - 1].LhsSize(), a->afds[i].LhsSize());
  }
}

TEST(MinedDependenciesTest, BestKeyPrefersSupportThenSize) {
  MinedDependencies deps;
  deps.num_attributes = 3;
  deps.keys.push_back(AKey{AttrBit(0), 0.2, true});
  deps.keys.push_back(AKey{AttrBit(1) | AttrBit(2), 0.0, true});
  deps.keys.push_back(AKey{AttrBit(0) | AttrBit(1) | AttrBit(2), 0.0, false});
  auto best = deps.BestKey();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->attrs, AttrBit(1) | AttrBit(2));  // support 1.0, size 2
}

TEST(MinedDependenciesTest, BestKeyErrorsWhenEmpty) {
  MinedDependencies deps;
  EXPECT_FALSE(deps.BestKey().ok());
}

TEST(MinedDependenciesTest, FilterHelpers) {
  MinedDependencies deps;
  deps.afds.push_back(Afd{AttrBit(0), 1, 0.0});
  deps.afds.push_back(Afd{AttrBit(0) | AttrBit(2), 1, 0.1});
  deps.afds.push_back(Afd{AttrBit(2), 0, 0.05});
  EXPECT_EQ(deps.AfdsWithRhs(1).size(), 2u);
  EXPECT_EQ(deps.AfdsWithRhs(0).size(), 1u);
  EXPECT_EQ(deps.AfdsWithLhsContaining(0).size(), 2u);
  EXPECT_EQ(deps.AfdsWithLhsContaining(2).size(), 2u);
}

TEST(AfdRenderTest, ToStringShowsSupport) {
  Schema s = Abc();
  Afd afd{AttrBit(0) | AttrBit(1), 2, 0.25};
  EXPECT_EQ(afd.ToString(s), "{A, B} -> C (support 0.750)");
  AKey key{AttrBit(0), 0.0, true};
  EXPECT_EQ(key.ToString(s), "{A} (support 1.000, quality 1.000, minimal)");
}

}  // namespace
}  // namespace aimq
