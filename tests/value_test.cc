#include "relation/value.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_categorical());
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, CategoricalPayload) {
  Value v = Value::Cat("Camry");
  EXPECT_TRUE(v.is_categorical());
  EXPECT_EQ(v.AsCat(), "Camry");
  EXPECT_EQ(v.ToString(), "Camry");
}

TEST(ValueTest, NumericPayload) {
  Value v = Value::Num(10000);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.AsNum(), 10000.0);
}

TEST(ValueTest, IntegralNumericPrintsWithoutDecimal) {
  EXPECT_EQ(Value::Num(10000).ToString(), "10000");
  EXPECT_EQ(Value::Num(-42).ToString(), "-42");
  EXPECT_EQ(Value::Num(0).ToString(), "0");
}

TEST(ValueTest, FractionalNumericPrints) {
  EXPECT_EQ(Value::Num(3.5).ToString(), "3.5");
}

TEST(ValueTest, NullPrintsEmpty) {
  EXPECT_EQ(Value().ToString(), "");
}

TEST(ValueTest, EqualityWithinKinds) {
  EXPECT_EQ(Value::Cat("a"), Value::Cat("a"));
  EXPECT_NE(Value::Cat("a"), Value::Cat("b"));
  EXPECT_EQ(Value::Num(1), Value::Num(1));
  EXPECT_NE(Value::Num(1), Value::Num(2));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, EqualityAcrossKindsIsFalse) {
  EXPECT_NE(Value::Cat("1"), Value::Num(1));
  EXPECT_NE(Value(), Value::Num(0));
  EXPECT_NE(Value(), Value::Cat(""));
}

TEST(ValueTest, OrderingNullNumericCategorical) {
  EXPECT_LT(Value(), Value::Num(-1e300));
  EXPECT_LT(Value::Num(1e300), Value::Cat(""));
  EXPECT_LT(Value::Num(1), Value::Num(2));
  EXPECT_LT(Value::Cat("a"), Value::Cat("b"));
  EXPECT_FALSE(Value() < Value());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Cat("x").Hash(), Value::Cat("x").Hash());
  EXPECT_EQ(Value::Num(5).Hash(), Value::Num(5).Hash());
  EXPECT_EQ(Value().Hash(), Value().Hash());
  // Different kinds with "same" content should (very likely) differ.
  EXPECT_NE(Value::Num(0).Hash(), Value().Hash());
}

TEST(ValueParseTest, ParsesCategorical) {
  auto v = Value::Parse("Accord", AttrType::kCategorical);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Cat("Accord"));
}

TEST(ValueParseTest, ParsesNumeric) {
  auto v = Value::Parse("12.5", AttrType::kNumeric);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Num(12.5));
}

TEST(ValueParseTest, EmptyParsesToNull) {
  auto v = Value::Parse("", AttrType::kNumeric);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  auto c = Value::Parse("", AttrType::kCategorical);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->is_null());
}

TEST(ValueParseTest, BadNumericErrors) {
  EXPECT_FALSE(Value::Parse("abc", AttrType::kNumeric).ok());
  EXPECT_FALSE(Value::Parse("12x", AttrType::kNumeric).ok());
}

TEST(ValueParseTest, RoundTripsToString) {
  for (double d : {0.0, 1.0, -17.0, 10000.0, 2.25}) {
    auto v = Value::Parse(Value::Num(d).ToString(), AttrType::kNumeric);
    ASSERT_TRUE(v.ok());
    EXPECT_DOUBLE_EQ(v->AsNum(), d);
  }
}

TEST(AttrTypeTest, Names) {
  EXPECT_STREQ(AttrTypeName(AttrType::kCategorical), "categorical");
  EXPECT_STREQ(AttrTypeName(AttrType::kNumeric), "numeric");
}

}  // namespace
}  // namespace aimq
