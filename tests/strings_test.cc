#include "util/strings.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"Make", "Model", "Year"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("nochange"), "nochange");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(TrimTest, KeepsInteriorWhitespace) {
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("CamRY"), "camry");
  EXPECT_EQ(ToLower("abc123!"), "abc123!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("CarDB", "Car"));
  EXPECT_TRUE(StartsWith("CarDB", ""));
  EXPECT_TRUE(StartsWith("CarDB", "CarDB"));
  EXPECT_FALSE(StartsWith("CarDB", "CarDBX"));
  EXPECT_FALSE(StartsWith("CarDB", "car"));
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace aimq
