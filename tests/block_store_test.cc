// CodeBlockStore tests: build/scan/random-access equivalence against a plain
// vector reference, budget-driven eviction, pinning, cursor iteration, and
// the spill file close/reopen seam (answers must come back byte-identical
// after a cold restart).

#include "storage/code_block_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/spill_file.h"
#include "util/rng.h"

namespace aimq {
namespace storage {
namespace {

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "aimq_block_store_" + tag + "_" +
         std::to_string(::getpid()) + ".spill";
}

// Reference columns: clustered codes with nulls sprinkled in, sized to span
// several blocks including a ragged final one.
std::vector<std::vector<uint32_t>> MakeReference(size_t cols, size_t rows,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> ref(cols);
  for (size_t c = 0; c < cols; ++c) {
    ref[c].reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      const uint64_t roll = rng.Next() % 20;
      if (roll == 0) {
        ref[c].push_back(kNullCode);
      } else {
        // Cluster around a per-column center so frame-of-reference bites.
        ref[c].push_back(static_cast<uint32_t>(1000 * c + rng.Next() % 97));
      }
    }
  }
  return ref;
}

std::unique_ptr<CodeBlockStore> BuildStore(
    const std::vector<std::vector<uint32_t>>& ref, BlockStoreOptions opts) {
  auto created = CodeBlockStore::Create(std::move(opts), ref.size());
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<CodeBlockStore> store = created.TakeValue();
  // Interleave chunked appends across columns to exercise buffering.
  const size_t rows = ref.empty() ? 0 : ref[0].size();
  const size_t chunk = 100;
  for (size_t start = 0; start < rows; start += chunk) {
    const size_t n = start + chunk <= rows ? chunk : rows - start;
    for (size_t c = 0; c < ref.size(); ++c) {
      EXPECT_TRUE(store->Append(c, ref[c].data() + start, n).ok());
    }
  }
  EXPECT_TRUE(store->FinishBuild().ok());
  return store;
}

void ExpectStoreMatchesReference(
    const CodeBlockStore& store,
    const std::vector<std::vector<uint32_t>>& ref) {
  ASSERT_EQ(store.num_cols(), ref.size());
  for (size_t c = 0; c < ref.size(); ++c) {
    ASSERT_EQ(store.num_rows(), ref[c].size());
    // Cursor scan.
    auto cursor = store.ColumnCursor(c);
    size_t row = 0;
    while (cursor.Next()) {
      ASSERT_EQ(cursor.begin_row(), row);
      for (size_t i = 0; i < cursor.size(); ++i, ++row) {
        ASSERT_EQ(cursor.data()[i], ref[c][row])
            << "col=" << c << " row=" << row;
      }
    }
    ASSERT_EQ(row, ref[c].size());
    // Random access (striding to touch every block out of order).
    for (size_t r = 0; r < ref[c].size(); r += 37) {
      ASSERT_EQ(store.At(c, r), ref[c][r]) << "col=" << c << " row=" << r;
    }
  }
}

TEST(BlockStoreTest, InMemoryRoundTripAcrossBlockBoundaries) {
  // 777 rows with 64-row blocks: 12 full blocks + a ragged 9-row tail.
  const auto ref = MakeReference(3, 777, 11);
  BlockStoreOptions opts;
  opts.block_size = 64;
  auto store = BuildStore(ref, opts);
  EXPECT_EQ(store->block_size(), 64u);
  EXPECT_EQ(store->NumBlocks(), 13u);
  EXPECT_EQ(store->BlockRows(12), 9u);
  ExpectStoreMatchesReference(*store, ref);
}

TEST(BlockStoreTest, PackedFootprintBeatsPlain) {
  const auto ref = MakeReference(4, 20'000, 5);
  BlockStoreOptions opts;
  opts.block_size = 1024;
  auto store = BuildStore(ref, opts);
  const BlockStoreStats stats = store->GetStats();
  EXPECT_EQ(stats.plain_bytes, 4u * 4u * 20'000u);
  // 97 distinct clustered values need ~7 bits, not 32.
  EXPECT_LT(stats.packed_bytes, stats.plain_bytes / 2);
  EXPECT_EQ(stats.stored_bytes, stats.packed_bytes);  // no codec
  EXPECT_EQ(stats.spilled_bytes, 0u);
}

TEST(BlockStoreTest, CodecShrinksStoredBytes) {
  // Constant columns compress to almost nothing under the lite codec.
  std::vector<std::vector<uint32_t>> ref(2);
  ref[0].assign(50'000, 7);
  ref[1].assign(50'000, 123456);
  BlockStoreOptions opts;
  opts.block_size = 4096;
  opts.codec = CodecKind::kLite;
  auto store = BuildStore(ref, opts);
  const BlockStoreStats stats = store->GetStats();
  EXPECT_LT(stats.stored_bytes, stats.packed_bytes);
  ExpectStoreMatchesReference(*store, ref);
}

TEST(BlockStoreTest, SpillRoundTrip) {
  const auto ref = MakeReference(3, 5'000, 21);
  BlockStoreOptions opts;
  opts.block_size = 256;
  opts.codec = CodecKind::kLite;
  opts.spill_path = TempPath("roundtrip");
  auto store = BuildStore(ref, opts);
  const BlockStoreStats stats = store->GetStats();
  EXPECT_GT(stats.spilled_bytes, 0u);
  EXPECT_EQ(stats.spilled_bytes, stats.stored_bytes);
  ExpectStoreMatchesReference(*store, ref);
}

TEST(BlockStoreTest, SpillSurvivesCloseAndReopenByteIdentical) {
  const auto ref = MakeReference(2, 3'000, 42);
  BlockStoreOptions opts;
  opts.block_size = 128;
  opts.codec = CodecKind::kLite;
  opts.spill_path = TempPath("reopen");
  auto store = BuildStore(ref, opts);

  // Read everything once (warm), then close + reopen the spill file and
  // drop the cache: the cold re-read must be byte-identical.
  std::vector<uint32_t> warm;
  for (size_t c = 0; c < ref.size(); ++c) {
    auto cursor = store->ColumnCursor(c);
    while (cursor.Next()) {
      warm.insert(warm.end(), cursor.data(), cursor.data() + cursor.size());
    }
  }
  ASSERT_TRUE(store->ReopenSpill().ok());
  std::vector<uint32_t> cold;
  for (size_t c = 0; c < ref.size(); ++c) {
    auto cursor = store->ColumnCursor(c);
    while (cursor.Next()) {
      cold.insert(cold.end(), cursor.data(), cursor.data() + cursor.size());
    }
  }
  EXPECT_EQ(warm, cold);
  // And random access still matches the reference after the cold start.
  ExpectStoreMatchesReference(*store, ref);
}

TEST(BlockStoreTest, BudgetEvictsColdBlocks) {
  const auto ref = MakeReference(1, 64 * 64, 9);  // 64 blocks of 64 rows
  BlockStoreOptions opts;
  opts.block_size = 64;
  opts.spill_path = TempPath("evict");
  // Budget fits ~4 decoded blocks (64 rows * 4 bytes = 256B each).
  opts.budget_bytes = 4 * 64 * sizeof(uint32_t);
  auto store = BuildStore(ref, opts);
  ExpectStoreMatchesReference(*store, ref);
  const BlockStoreStats stats = store->GetStats();
  EXPECT_GT(stats.cache.evictions, 0u);
  EXPECT_LE(stats.cache.resident_bytes, opts.budget_bytes);
  // Touch every block again: with only 4 resident out of 64, these are
  // (mostly) cache misses served from the spill file.
  const uint64_t misses_before = stats.cache.misses;
  for (size_t b = 0; b < store->NumBlocks(); ++b) {
    store->GetBlock(0, b);
  }
  EXPECT_GT(store->GetStats().cache.misses, misses_before);
}

TEST(BlockStoreTest, PinnedBlocksAreNeverEvicted) {
  const auto ref = MakeReference(1, 64 * 32, 13);
  BlockStoreOptions opts;
  opts.block_size = 64;
  opts.spill_path = TempPath("pin");
  opts.budget_bytes = 2 * 64 * sizeof(uint32_t);  // ~2 blocks
  auto store = BuildStore(ref, opts);
  ASSERT_TRUE(store->Pin(0, 0).ok());
  // Sweep every block to churn the cache far past the budget.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (size_t b = 0; b < store->NumBlocks(); ++b) store->GetBlock(0, b);
  }
  BlockStoreStats stats = store->GetStats();
  EXPECT_EQ(stats.cache.pinned_bytes, 64 * sizeof(uint32_t));
  // A pinned block is served without a miss even after the churn.
  const uint64_t misses_before = stats.cache.misses;
  store->GetBlock(0, 0);
  EXPECT_EQ(store->GetStats().cache.misses, misses_before);
  store->Unpin(0, 0);
  EXPECT_EQ(store->GetStats().cache.pinned_bytes, 0u);
}

TEST(BlockStoreTest, UnequalColumnLengthsRejected) {
  auto created = CodeBlockStore::Create(BlockStoreOptions{}, 2);
  ASSERT_TRUE(created.ok());
  auto store = created.TakeValue();
  const std::vector<uint32_t> codes(10, 1);
  ASSERT_TRUE(store->Append(0, codes.data(), codes.size()).ok());
  ASSERT_TRUE(store->Append(1, codes.data(), codes.size() - 1).ok());
  EXPECT_FALSE(store->FinishBuild().ok());
}

TEST(BlockStoreTest, AppendAfterFinishRejected) {
  auto created = CodeBlockStore::Create(BlockStoreOptions{}, 1);
  ASSERT_TRUE(created.ok());
  auto store = created.TakeValue();
  const std::vector<uint32_t> codes(10, 1);
  ASSERT_TRUE(store->Append(0, codes.data(), codes.size()).ok());
  ASSERT_TRUE(store->FinishBuild().ok());
  EXPECT_FALSE(store->Append(0, codes.data(), codes.size()).ok());
}

TEST(BlockStoreTest, EmptyStore) {
  auto created = CodeBlockStore::Create(BlockStoreOptions{}, 2);
  ASSERT_TRUE(created.ok());
  auto store = created.TakeValue();
  ASSERT_TRUE(store->FinishBuild().ok());
  EXPECT_EQ(store->num_rows(), 0u);
  EXPECT_EQ(store->NumBlocks(), 0u);
  auto cursor = store->ColumnCursor(0);
  EXPECT_FALSE(cursor.Next());
}

TEST(SpillFileTest, AppendReadReopen) {
  auto created = SpillFile::Create(TempPath("raw"));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto file = created.TakeValue();
  const std::vector<uint8_t> a = {1, 2, 3, 4, 5};
  const std::vector<uint8_t> b = {9, 8, 7};
  auto off_a = file->Append(a.data(), a.size());
  auto off_b = file->Append(b.data(), b.size());
  ASSERT_TRUE(off_a.ok() && off_b.ok());
  EXPECT_EQ(*off_a, 0u);
  EXPECT_EQ(*off_b, a.size());
  EXPECT_EQ(file->size(), a.size() + b.size());

  std::vector<uint8_t> buf(b.size());
  ASSERT_TRUE(file->ReadAt(*off_b, b.size(), buf.data()).ok());
  EXPECT_EQ(buf, b);

  ASSERT_TRUE(file->Reopen().ok());
  std::vector<uint8_t> buf2(a.size());
  ASSERT_TRUE(file->ReadAt(*off_a, a.size(), buf2.data()).ok());
  EXPECT_EQ(buf2, a);
  // Read-only after reopen: appends fail, reads past EOF fail.
  EXPECT_FALSE(file->Append(a.data(), a.size()).ok());
  EXPECT_FALSE(file->ReadAt(file->size(), 1, buf2.data()).ok());
}

}  // namespace
}  // namespace storage
}  // namespace aimq
