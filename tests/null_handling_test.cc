// Null handling across the stack: real Web databases have missing fields
// everywhere, so every stage — partitions, supertuples, relaxation, the full
// pipeline — must tolerate null attribute values.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/knowledge.h"
#include "datagen/cardb.h"
#include "util/rng.h"

namespace aimq {
namespace {

// CarDB with ~15% of Location and Color values nulled out.
Relation SparseCarDb(size_t n) {
  CarDbSpec spec;
  spec.num_tuples = n;
  spec.seed = 77;
  Relation dense = CarDbGenerator(spec).Generate();
  Relation sparse(dense.schema());
  Rng rng(88);
  for (const Tuple& t : dense.tuples()) {
    std::vector<Value> values = t.values();
    if (rng.Bernoulli(0.15)) values[CarDbGenerator::kLocation] = Value();
    if (rng.Bernoulli(0.15)) values[CarDbGenerator::kColor] = Value();
    sparse.AppendUnchecked(Tuple(std::move(values)));
  }
  return sparse;
}

TEST(NullHandlingTest, PipelineMinesOverSparseData) {
  WebDatabase db("SparseCarDB", SparseCarDb(3000));
  AimqOptions options;
  options.collector.sample_size = 1500;
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
  // Model→Make must still be found.
  bool found = false;
  for (const Afd& afd : knowledge->dependencies.afds) {
    if (afd.lhs == AttrBit(CarDbGenerator::kModel) &&
        afd.rhs == CarDbGenerator::kMake) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NullHandlingTest, AnswersWorkAndNeverCrash) {
  WebDatabase db("SparseCarDB", SparseCarDb(3000));
  AimqOptions options;
  options.collector.sample_size = 1500;
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(&db, knowledge.TakeValue(), options);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(9000));
  auto answers = engine.Answer(q);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_FALSE(answers->empty());
  for (const RankedAnswer& a : *answers) {
    EXPECT_GE(a.similarity, 0.0);
    EXPECT_LE(a.similarity, 1.0 + 1e-12);
  }
}

TEST(NullHandlingTest, FindSimilarFromNullBearingAnchor) {
  Relation data = SparseCarDb(3000);
  // Find an anchor that actually has a null.
  size_t anchor_row = SIZE_MAX;
  for (size_t r = 0; r < data.NumTuples(); ++r) {
    if (data.tuple(r).At(CarDbGenerator::kLocation).is_null()) {
      anchor_row = r;
      break;
    }
  }
  ASSERT_NE(anchor_row, SIZE_MAX);

  WebDatabase db("SparseCarDB", data);
  AimqOptions options;
  options.collector.sample_size = 1500;
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(&db, knowledge.TakeValue(), options);

  auto similar = engine.FindSimilar(data.tuple(anchor_row), 5, 0.3,
                                    RelaxationStrategy::kGuided);
  ASSERT_TRUE(similar.ok()) << similar.status().ToString();
  // The null attribute is simply never bound; similar tuples still arrive.
  EXPECT_FALSE(similar->empty());
}

TEST(NullHandlingTest, ExplainToleratesNullAnswerValues) {
  Relation data = SparseCarDb(2000);
  WebDatabase db("SparseCarDB", data);
  AimqOptions options;
  options.collector.sample_size = 1000;
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(&db, knowledge.TakeValue(), options);

  // Query on an attribute that is null in some answers.
  ImpreciseQuery q;
  q.Bind("Color", Value::Cat("Red"));
  q.Bind("Model", Value::Cat("Camry"));
  size_t null_color_row = SIZE_MAX;
  for (size_t r = 0; r < data.NumTuples(); ++r) {
    if (data.tuple(r).At(CarDbGenerator::kColor).is_null()) {
      null_color_row = r;
      break;
    }
  }
  ASSERT_NE(null_color_row, SIZE_MAX);
  auto explanation = engine.Explain(q, data.tuple(null_color_row));
  ASSERT_TRUE(explanation.ok());
  // Null answer value contributes zero similarity but keeps its weight.
  for (const AttributeContribution& c : explanation->contributions) {
    if (c.attribute == "Color") {
      EXPECT_DOUBLE_EQ(c.similarity, 0.0);
      EXPECT_GT(c.weight, 0.0);
    }
  }
}

}  // namespace
}  // namespace aimq
