#include "query/selection_query.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Tuple Row(const std::string& make, const std::string& model, double price) {
  return Tuple({Value::Cat(make), Value::Cat(model), Value::Num(price)});
}

Relation TestRelation() {
  Relation r(TestSchema());
  EXPECT_TRUE(r.Append(Row("Toyota", "Camry", 10000)).ok());
  EXPECT_TRUE(r.Append(Row("Toyota", "Corolla", 8000)).ok());
  EXPECT_TRUE(r.Append(Row("Honda", "Accord", 10000)).ok());
  EXPECT_TRUE(r.Append(Row("Honda", "Civic", 7000)).ok());
  return r;
}

TEST(SelectionQueryTest, EmptyQueryMatchesEverything) {
  Relation r = TestRelation();
  SelectionQuery q;
  auto rows = q.Evaluate(r);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST(SelectionQueryTest, ConjunctionNarrows) {
  Relation r = TestRelation();
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("Toyota")),
                    Predicate::Eq("Price", Value::Num(10000))});
  auto rows = q.Evaluate(r);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{0}));
}

TEST(SelectionQueryTest, RangePredicate) {
  Relation r = TestRelation();
  SelectionQuery q({Predicate("Price", CompareOp::kLt, Value::Num(9000))});
  auto rows = q.Evaluate(r);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<size_t>{1, 3}));
}

TEST(SelectionQueryTest, NoMatches) {
  Relation r = TestRelation();
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("BMW"))});
  auto rows = q.Evaluate(r);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(SelectionQueryTest, FromTupleBindsAllNonNull) {
  Schema s = TestSchema();
  SelectionQuery q = SelectionQuery::FromTuple(s, Row("Honda", "Civic", 7000));
  EXPECT_EQ(q.NumPredicates(), 3u);
  EXPECT_TRUE(*q.Matches(s, Row("Honda", "Civic", 7000)));
  EXPECT_FALSE(*q.Matches(s, Row("Honda", "Civic", 7001)));
}

TEST(SelectionQueryTest, FromTupleSkipsNulls) {
  Schema s = TestSchema();
  Tuple t({Value::Cat("Honda"), Value(), Value::Num(7000)});
  SelectionQuery q = SelectionQuery::FromTuple(s, t);
  EXPECT_EQ(q.NumPredicates(), 2u);
  EXPECT_FALSE(q.Binds("Model"));
  EXPECT_TRUE(q.Binds("Make"));
}

TEST(SelectionQueryTest, DropAttributes) {
  Schema s = TestSchema();
  SelectionQuery q = SelectionQuery::FromTuple(s, Row("Honda", "Civic", 7000));
  SelectionQuery dropped = q.DropAttributes({"Model", "Price"});
  EXPECT_EQ(dropped.NumPredicates(), 1u);
  EXPECT_TRUE(dropped.Binds("Make"));
  // Original is untouched.
  EXPECT_EQ(q.NumPredicates(), 3u);
}

TEST(SelectionQueryTest, DropUnknownAttributeIsNoop) {
  Schema s = TestSchema();
  SelectionQuery q = SelectionQuery::FromTuple(s, Row("Honda", "Civic", 7000));
  EXPECT_EQ(q.DropAttributes({"Bogus"}).NumPredicates(), 3u);
}

TEST(SelectionQueryTest, MatchesPropagatesErrors) {
  Schema s = TestSchema();
  SelectionQuery q({Predicate::Like("Make", Value::Cat("Honda"))});
  EXPECT_FALSE(q.Matches(s, Row("Honda", "Civic", 7000)).ok());
}

TEST(SelectionQueryTest, ToString) {
  SelectionQuery q({Predicate::Eq("Make", Value::Cat("Kia")),
                    Predicate::Eq("Price", Value::Num(9000))});
  EXPECT_EQ(q.ToString(), "Q(Make = Kia, Price = 9000)");
}

TEST(SelectionQueryTest, EqualityAndEmpty) {
  SelectionQuery a({Predicate::Eq("Make", Value::Cat("Kia"))});
  SelectionQuery b({Predicate::Eq("Make", Value::Cat("Kia"))});
  SelectionQuery c;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(c.Empty());
  EXPECT_FALSE(a.Empty());
}

}  // namespace
}  // namespace aimq
