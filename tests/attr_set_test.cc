#include "afd/attr_set.h"

#include <gtest/gtest.h>

#include <set>

namespace aimq {
namespace {

TEST(AttrSetTest, BitBasics) {
  EXPECT_EQ(AttrBit(0), 1u);
  EXPECT_EQ(AttrBit(3), 8u);
  AttrSet s = AttrBit(0) | AttrBit(2);
  EXPECT_TRUE(AttrSetContains(s, 0));
  EXPECT_FALSE(AttrSetContains(s, 1));
  EXPECT_TRUE(AttrSetContains(s, 2));
  EXPECT_EQ(AttrSetSize(s), 2u);
}

TEST(AttrSetTest, SubsetRelation) {
  AttrSet sub = AttrBit(1) | AttrBit(3);
  AttrSet super = sub | AttrBit(5);
  EXPECT_TRUE(AttrSetIsSubset(sub, super));
  EXPECT_FALSE(AttrSetIsSubset(super, sub));
  EXPECT_TRUE(AttrSetIsSubset(sub, sub));
  EXPECT_TRUE(AttrSetIsSubset(0, sub));
}

TEST(AttrSetTest, Members) {
  EXPECT_EQ(AttrSetMembers(AttrBit(4) | AttrBit(1)),
            (std::vector<size_t>{1, 4}));
  EXPECT_TRUE(AttrSetMembers(0).empty());
}

TEST(AttrSetTest, FullSet) {
  EXPECT_EQ(FullAttrSet(0), 0u);
  EXPECT_EQ(FullAttrSet(3), 0b111u);
  EXPECT_EQ(AttrSetSize(FullAttrSet(7)), 7u);
  EXPECT_EQ(FullAttrSet(32), ~AttrSet{0});
}

TEST(AttrSetTest, ToStringUsesSchemaNames) {
  auto schema = Schema::Make({{"Make", AttrType::kCategorical},
                              {"Model", AttrType::kCategorical},
                              {"Price", AttrType::kNumeric}});
  EXPECT_EQ(AttrSetToString(AttrBit(0) | AttrBit(2), *schema),
            "{Make, Price}");
  EXPECT_EQ(AttrSetToString(0, *schema), "{}");
}

TEST(SubsetsOfSizeTest, EnumeratesAllCombinations) {
  AttrSet universe = FullAttrSet(5);
  EXPECT_EQ(SubsetsOfSize(universe, 1).size(), 5u);
  EXPECT_EQ(SubsetsOfSize(universe, 2).size(), 10u);
  EXPECT_EQ(SubsetsOfSize(universe, 3).size(), 10u);
  EXPECT_EQ(SubsetsOfSize(universe, 5).size(), 1u);
  EXPECT_TRUE(SubsetsOfSize(universe, 6).empty());
  EXPECT_TRUE(SubsetsOfSize(universe, 0).empty());
}

TEST(SubsetsOfSizeTest, AllSubsetsHaveRequestedSize) {
  for (size_t k = 1; k <= 4; ++k) {
    for (AttrSet s : SubsetsOfSize(FullAttrSet(6), k)) {
      EXPECT_EQ(AttrSetSize(s), k);
      EXPECT_TRUE(AttrSetIsSubset(s, FullAttrSet(6)));
    }
  }
}

TEST(SubsetsOfSizeTest, SubsetsAreDistinct) {
  auto subsets = SubsetsOfSize(FullAttrSet(7), 3);
  std::set<AttrSet> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), subsets.size());
  EXPECT_EQ(unique.size(), 35u);
}

TEST(SubsetsOfSizeTest, WorksOnSparseUniverse) {
  AttrSet universe = AttrBit(1) | AttrBit(4) | AttrBit(6);
  auto pairs = SubsetsOfSize(universe, 2);
  ASSERT_EQ(pairs.size(), 3u);
  for (AttrSet p : pairs) {
    EXPECT_TRUE(AttrSetIsSubset(p, universe));
    EXPECT_EQ(AttrSetSize(p), 2u);
  }
}

TEST(SubsetsOfSizeTest, SingletonUniverse) {
  auto subsets = SubsetsOfSize(AttrBit(3), 1);
  ASSERT_EQ(subsets.size(), 1u);
  EXPECT_EQ(subsets[0], AttrBit(3));
}

}  // namespace
}  // namespace aimq
