// Determinism and thread-safety of the parallel relaxation engine: ranked
// answers must be bit-identical at any thread count, concurrent sessions
// must agree with serial ones, and probe deduplication must be observable.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "datagen/cardb.h"
#include "util/parallel.h"

namespace aimq {
namespace {

class EngineParallelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 5000;
    spec.seed = 7;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    options_ = new AimqOptions();
    options_->collector.sample_size = 2500;
    options_->tsim = 0.4;
    options_->top_k = 10;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
  }

  static std::unique_ptr<AimqEngine> MakeEngine(size_t num_threads,
                                                size_t probe_cache_capacity) {
    AimqOptions options = *options_;
    options.num_threads = num_threads;
    options.probe_cache_capacity = probe_cache_capacity;
    return std::make_unique<AimqEngine>(db_, *knowledge_, options);
  }

  static std::vector<ImpreciseQuery> TestQueries() {
    std::vector<ImpreciseQuery> queries;
    ImpreciseQuery q1;
    q1.Bind("Model", Value::Cat("Camry"));
    queries.push_back(q1);
    ImpreciseQuery q2;
    q2.Bind("Model", Value::Cat("Civic"));
    q2.Bind("Price", Value::Num(9000));
    queries.push_back(q2);
    ImpreciseQuery q3;
    q3.Bind("Make", Value::Cat("Ford"));
    q3.Bind("Mileage", Value::Num(60000));
    queries.push_back(q3);
    return queries;
  }

  static void ExpectSameAnswers(const std::vector<RankedAnswer>& a,
                                const std::vector<RankedAnswer>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].tuple, b[i].tuple) << "rank " << i;
      // Bit-identical, not approximately equal: the parallel merge must not
      // reorder any floating-point accumulation.
      EXPECT_EQ(a[i].similarity, b[i].similarity) << "rank " << i;
    }
  }

  static WebDatabase* db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* EngineParallelTest::db_ = nullptr;
AimqOptions* EngineParallelTest::options_ = nullptr;
MinedKnowledge* EngineParallelTest::knowledge_ = nullptr;

TEST_F(EngineParallelTest, AnswerIdenticalAcrossThreadCounts) {
  for (RelaxationStrategy strategy :
       {RelaxationStrategy::kGuided, RelaxationStrategy::kRandom}) {
    auto reference = MakeEngine(1, 1024);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      auto engine = MakeEngine(threads, 1024);
      for (const ImpreciseQuery& q : TestQueries()) {
        auto serial = reference->Answer(q, strategy);
        auto parallel = engine->Answer(q, strategy);
        ASSERT_TRUE(serial.ok()) << serial.status().ToString();
        ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
        ExpectSameAnswers(*serial, *parallel);
      }
    }
  }
}

TEST_F(EngineParallelTest, AnswerIdenticalWithAndWithoutProbeCache) {
  // The cache is pure memoization: enabling it must not change any answer.
  auto cached = MakeEngine(4, 1024);
  auto uncached = MakeEngine(4, 0);
  for (const ImpreciseQuery& q : TestQueries()) {
    auto a = cached->Answer(q);
    auto b = uncached->Answer(q);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSameAnswers(*a, *b);
  }
}

TEST_F(EngineParallelTest, SetNumThreadsRetunesExistingEngine) {
  auto engine = MakeEngine(1, 1024);
  ImpreciseQuery q = TestQueries()[0];
  auto serial = engine->Answer(q);
  ASSERT_TRUE(serial.ok());
  engine->SetNumThreads(8);
  auto parallel = engine->Answer(q);
  ASSERT_TRUE(parallel.ok());
  ExpectSameAnswers(*serial, *parallel);
}

TEST_F(EngineParallelTest, RelaxationProbesAreDedupedAcrossBaseTuples) {
  // Base tuples of one model share deep relaxations, so a multi-tuple base
  // set must fold duplicate probes — with the shared cache and without it.
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  for (size_t cache_capacity : {size_t{4096}, size_t{0}}) {
    AimqOptions options = *options_;
    options.num_threads = 4;
    options.probe_cache_capacity = cache_capacity;
    // Walk each base tuple's full relaxation sequence so the deep (mostly
    // unbound) queries that base tuples share are actually generated.
    options.relax_stop_after = 0;
    AimqEngine engine(db_, *knowledge_, options);
    RelaxationStats stats;
    ASSERT_TRUE(engine.Answer(q, RelaxationStrategy::kGuided, &stats).ok());
    EXPECT_GT(stats.deduped_probes, 0u) << "cache=" << cache_capacity;
    if (cache_capacity > 0) {
      EXPECT_GT(stats.cache_hits, 0u);
    } else {
      EXPECT_EQ(stats.cache_hits, 0u);
    }
  }
}

TEST_F(EngineParallelTest, DeriveBaseSetMatchesAcrossThreadCounts) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10001));  // forces footnote-2 generalization
  auto serial = MakeEngine(1, 1024);
  auto parallel = MakeEngine(8, 1024);
  auto a = serial->DeriveBaseSet(q);
  auto b = parallel->DeriveBaseSet(q);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]);
  }
}

TEST_F(EngineParallelTest, SharedProbeCacheDedupesAcrossEngines) {
  auto cache = std::make_shared<ProbeCache>(4096);
  auto first = MakeEngine(1, 0);
  auto second = MakeEngine(1, 0);
  first->SetProbeCache(cache);
  second->SetProbeCache(cache);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Corolla"));
  RelaxationStats warmup, warm;
  ASSERT_TRUE(first->Answer(q, RelaxationStrategy::kGuided, &warmup).ok());
  ASSERT_TRUE(second->Answer(q, RelaxationStrategy::kGuided, &warm).ok());
  // The second engine's probes are all served by the first engine's cache.
  EXPECT_EQ(warm.queries_issued, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_hits, warmup.queries_issued + warmup.cache_hits);
}

TEST_F(EngineParallelTest, ConcurrentFindSimilarMatchesSerial) {
  auto engine = MakeEngine(1, 4096);
  const Relation& hidden = db_->hidden_relation_for_testing();
  std::vector<size_t> anchors{11, 222, 1333, 2444, 3555, 4666};

  for (RelaxationStrategy strategy :
       {RelaxationStrategy::kGuided, RelaxationStrategy::kRandom}) {
    std::vector<std::vector<RankedAnswer>> serial(anchors.size());
    for (size_t i = 0; i < anchors.size(); ++i) {
      auto r = engine->FindSimilar(hidden.tuple(anchors[i]), 10, 0.5,
                                   strategy);
      ASSERT_TRUE(r.ok());
      serial[i] = r.TakeValue();
    }
    std::vector<std::vector<RankedAnswer>> concurrent(anchors.size());
    std::atomic<int> failures{0};
    ParallelFor(anchors.size(), 8, [&](size_t i) {
      auto r = engine->FindSimilar(hidden.tuple(anchors[i]), 10, 0.5,
                                   strategy);
      if (!r.ok()) {
        ++failures;
        return;
      }
      concurrent[i] = r.TakeValue();
    });
    ASSERT_EQ(failures.load(), 0);
    for (size_t i = 0; i < anchors.size(); ++i) {
      ExpectSameAnswers(serial[i], concurrent[i]);
    }
  }
}

TEST_F(EngineParallelTest, PhaseTimersAccumulate) {
  auto engine = MakeEngine(2, 1024);
  ImpreciseQuery q = TestQueries()[1];
  RelaxationStats stats;
  ASSERT_TRUE(engine->Answer(q, RelaxationStrategy::kGuided, &stats).ok());
  EXPECT_GE(stats.base_set_seconds, 0.0);
  EXPECT_GT(stats.relax_seconds, 0.0);
  EXPECT_GE(stats.rank_seconds, 0.0);
}

}  // namespace
}  // namespace aimq
