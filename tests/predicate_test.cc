#include "query/predicate.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Tuple Row(const std::string& make, double price) {
  return Tuple({Value::Cat(make), Value::Num(price)});
}

TEST(PredicateTest, EqualityOnCategorical) {
  Schema s = TestSchema();
  Predicate p = Predicate::Eq("Make", Value::Cat("Ford"));
  EXPECT_TRUE(*p.Matches(s, Row("Ford", 1)));
  EXPECT_FALSE(*p.Matches(s, Row("Kia", 1)));
}

TEST(PredicateTest, EqualityOnNumeric) {
  Schema s = TestSchema();
  Predicate p = Predicate::Eq("Price", Value::Num(10000));
  EXPECT_TRUE(*p.Matches(s, Row("Ford", 10000)));
  EXPECT_FALSE(*p.Matches(s, Row("Ford", 10001)));
}

TEST(PredicateTest, RangeOperators) {
  Schema s = TestSchema();
  Tuple t = Row("Ford", 10.0);
  EXPECT_TRUE(*Predicate("Price", CompareOp::kLt, Value::Num(11)).Matches(s, t));
  EXPECT_FALSE(*Predicate("Price", CompareOp::kLt, Value::Num(10)).Matches(s, t));
  EXPECT_TRUE(*Predicate("Price", CompareOp::kLe, Value::Num(10)).Matches(s, t));
  EXPECT_TRUE(*Predicate("Price", CompareOp::kGt, Value::Num(9)).Matches(s, t));
  EXPECT_FALSE(*Predicate("Price", CompareOp::kGt, Value::Num(10)).Matches(s, t));
  EXPECT_TRUE(*Predicate("Price", CompareOp::kGe, Value::Num(10)).Matches(s, t));
}

TEST(PredicateTest, RangeOnCategoricalErrors) {
  Schema s = TestSchema();
  Predicate p("Make", CompareOp::kLt, Value::Cat("Ford"));
  EXPECT_FALSE(p.Matches(s, Row("Ford", 1)).ok());
}

TEST(PredicateTest, LikeIsNotExecutable) {
  Schema s = TestSchema();
  Predicate p = Predicate::Like("Make", Value::Cat("Ford"));
  auto r = p.Matches(s, Row("Ford", 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PredicateTest, NullTupleValueNeverMatches) {
  Schema s = TestSchema();
  Tuple t({Value(), Value::Num(5)});
  EXPECT_FALSE(*Predicate::Eq("Make", Value::Cat("Ford")).Matches(s, t));
}

TEST(PredicateTest, NullPredicateValueNeverMatches) {
  Schema s = TestSchema();
  EXPECT_FALSE(*Predicate::Eq("Make", Value()).Matches(s, Row("Ford", 1)));
}

TEST(PredicateTest, UnknownAttributeErrors) {
  Schema s = TestSchema();
  auto r = Predicate::Eq("Bogus", Value::Num(1)).Matches(s, Row("Ford", 1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PredicateTest, ToStringRendersOperator) {
  EXPECT_EQ(Predicate::Eq("Make", Value::Cat("Ford")).ToString(),
            "Make = Ford");
  EXPECT_EQ(Predicate("Price", CompareOp::kLe, Value::Num(5)).ToString(),
            "Price <= 5");
  EXPECT_EQ(Predicate::Like("Make", Value::Cat("Ford")).ToString(),
            "Make like Ford");
}

TEST(CompareOpTest, Symbols) {
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGe), ">=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLike), "like");
}

}  // namespace
}  // namespace aimq
