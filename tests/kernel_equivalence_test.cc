// The scalar/SIMD bit-identity contract (simd/dispatch.h): every vector
// kernel tier must reproduce the scalar reference exactly — identical mask
// words, histogram counts, intersection sums, row-id sets, partition
// structures, exact Jaccard doubles, and final ranked engine answers — on
// CarDB/CensusDB and on adversarial inputs (all-null blocks, sentinel codes
// 0/1, block-boundary straddles, code widths 1..32).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "afd/partition.h"
#include "core/engine.h"
#include "core/knowledge.h"
#include "datagen/cardb.h"
#include "datagen/censusdb.h"
#include "query/selection_query.h"
#include "relation/columnar.h"
#include "relation/value_dict.h"
#include "simd/dispatch.h"
#include "util/coded_bag.h"
#include "util/rng.h"
#include "webdb/coded_query.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

using simd::Isa;
using simd::KernelsFor;

// Vector tiers this CPU can actually run (always at least empty; the scalar
// oracle is pitted against each of these).
std::vector<Isa> VectorTiers() {
  std::vector<Isa> tiers;
  for (Isa isa : {Isa::kSse42, Isa::kAvx2}) {
    if (static_cast<int>(isa) <= static_cast<int>(simd::DetectIsa())) {
      tiers.push_back(isa);
    }
  }
  return tiers;
}

// Forces a dispatch tier for one scope, restoring the prior tier after.
class ScopedIsa {
 public:
  explicit ScopedIsa(const char* name) : prev_(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::ForceIsa(name).ok());
  }
  ~ScopedIsa() { (void)simd::ForceIsa(simd::IsaName(prev_)); }

 private:
  Isa prev_;
};

// Adversarial lengths: empty, sub-lane, lane-exact, word-boundary straddles,
// and a length that spans many mask words.
const size_t kLengths[] = {0, 1, 7, 8, 63, 64, 65, 255, 256, 1000};

std::vector<uint32_t> RandomCodes(Rng& rng, size_t n, uint32_t width_bits,
                                  double null_fraction) {
  const uint32_t mask =
      width_bits >= 32 ? ~uint32_t{0}
                       : static_cast<uint32_t>((uint32_t{1} << width_bits) - 1);
  std::vector<uint32_t> codes(n);
  for (auto& c : codes) {
    c = rng.Bernoulli(null_fraction) ? ValueDict::kNullCode
                                     : static_cast<uint32_t>(rng.Next()) & mask;
  }
  return codes;
}

// Mask buffers are seeded with a poison pattern so a kernel that skips tail
// words (instead of zeroing bits >= n) is caught.
std::vector<uint64_t> PoisonedMask(size_t n) {
  return std::vector<uint64_t>((n + 63) / 64, 0xDEADBEEFDEADBEEFull);
}

// --- Raw kernels vs the scalar oracle --------------------------------------

TEST(KernelEquivalenceTest, EqMaskMatchesScalarOnAdversarialInputs) {
  Rng rng(1);
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    for (size_t n : kLengths) {
      for (uint32_t width = 1; width <= 32; ++width) {
        const auto codes = RandomCodes(rng, n, width, 0.1);
        // Targets: sentinels 0 and 1, the null code, and a present code.
        std::vector<uint32_t> targets = {0, 1, ValueDict::kNullCode};
        if (n > 0) targets.push_back(codes[rng.Uniform(n)]);
        for (uint32_t target : targets) {
          auto want = PoisonedMask(n);
          auto got = PoisonedMask(n);
          scalar.eq_mask(codes.data(), n, target, want.data());
          vec.eq_mask(codes.data(), n, target, got.data());
          ASSERT_EQ(got, want) << simd::IsaName(isa) << " n=" << n
                               << " width=" << width << " target=" << target;
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, EqMaskOnAllNullBlocks) {
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    for (size_t n : kLengths) {
      const std::vector<uint32_t> codes(n, ValueDict::kNullCode);
      for (uint32_t target : {uint32_t{0}, ValueDict::kNullCode}) {
        auto want = PoisonedMask(n);
        auto got = PoisonedMask(n);
        scalar.eq_mask(codes.data(), n, target, want.data());
        vec.eq_mask(codes.data(), n, target, got.data());
        ASSERT_EQ(got, want) << simd::IsaName(isa) << " n=" << n;
      }
    }
  }
}

TEST(KernelEquivalenceTest, TableMaskMatchesScalarOnAdversarialInputs) {
  Rng rng(2);
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    for (size_t n : kLengths) {
      for (uint32_t width = 1; width <= 12; ++width) {
        const auto codes = RandomCodes(rng, n, width, 0.15);
        const uint32_t table_size = uint32_t{1} << width;
        // The contract requires >= 3 readable bytes past the table.
        std::vector<uint8_t> table(table_size + 8, 0);
        for (uint32_t c = 0; c < table_size; ++c) {
          table[c] = rng.Bernoulli(0.5) ? 1 : 0;
        }
        auto want = PoisonedMask(n);
        auto got = PoisonedMask(n);
        scalar.table_mask(codes.data(), n, table.data(), table_size,
                          want.data());
        vec.table_mask(codes.data(), n, table.data(), table_size, got.data());
        ASSERT_EQ(got, want)
            << simd::IsaName(isa) << " n=" << n << " width=" << width;
      }
      // Empty table: nothing matches.
      const auto codes = RandomCodes(rng, n, 16, 0.0);
      const uint8_t pad[8] = {0};
      auto want = PoisonedMask(n);
      auto got = PoisonedMask(n);
      scalar.table_mask(codes.data(), n, pad, 0, want.data());
      vec.table_mask(codes.data(), n, pad, 0, got.data());
      ASSERT_EQ(got, want) << simd::IsaName(isa) << " empty table n=" << n;
    }
  }
}

TEST(KernelEquivalenceTest, HistogramMatchesScalarAndAccumulates) {
  Rng rng(3);
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    for (size_t n : kLengths) {
      for (uint32_t buckets : {1u, 2u, 5u, 64u, 1000u}) {
        // Codes either land in a bucket or are the null sentinel.
        std::vector<uint32_t> codes(n);
        for (auto& c : codes) {
          c = rng.Bernoulli(0.2) ? ValueDict::kNullCode
                                 : static_cast<uint32_t>(rng.Uniform(buckets));
        }
        // Non-zero initial counts verify the kernels accumulate rather than
        // overwrite (FromColumnCoded calls once per block window).
        std::vector<uint32_t> want(buckets + 1), got(buckets + 1);
        for (uint32_t b = 0; b <= buckets; ++b) {
          want[b] = got[b] = static_cast<uint32_t>(rng.Uniform(7));
        }
        scalar.histogram(codes.data(), n, buckets, want.data());
        vec.histogram(codes.data(), n, buckets, got.data());
        ASSERT_EQ(got, want)
            << simd::IsaName(isa) << " n=" << n << " buckets=" << buckets;
      }
    }
  }
}

// Sorted-unique (id, count) arrays with controllable density.
void RandomBagArrays(Rng& rng, size_t n, uint32_t id_space,
                     std::vector<uint32_t>* ids, std::vector<uint64_t>* counts) {
  ids->clear();
  counts->clear();
  std::vector<uint32_t> raw(n);
  for (auto& id : raw) id = static_cast<uint32_t>(rng.Uniform(id_space));
  std::sort(raw.begin(), raw.end());
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
  for (uint32_t id : raw) {
    ids->push_back(id);
    counts->push_back(1 + rng.Uniform(100));
  }
}

TEST(KernelEquivalenceTest, IntersectMatchesScalarIncludingGallopSkew) {
  Rng rng(4);
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  // (|a|, |b|) shapes: balanced, slightly skewed, and gallop-triggering
  // (ratio >= 32), in both argument orders, plus empty and singleton.
  const std::pair<size_t, size_t> kShapes[] = {
      {0, 0},     {0, 100},  {1, 1},      {1, 1000},  {7, 9},
      {64, 64},   {100, 90}, {5, 10000},  {10000, 5}, {257, 8192},
  };
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    for (const auto& [an, bn] : kShapes) {
      for (uint32_t id_space : {64u, 4096u, 1u << 20}) {
        std::vector<uint32_t> a_ids, b_ids;
        std::vector<uint64_t> a_counts, b_counts;
        RandomBagArrays(rng, an, id_space, &a_ids, &a_counts);
        RandomBagArrays(rng, bn, id_space, &b_ids, &b_counts);
        const uint64_t want =
            scalar.intersect_size(a_ids.data(), a_counts.data(), a_ids.size(),
                                  b_ids.data(), b_counts.data(), b_ids.size());
        const uint64_t got =
            vec.intersect_size(a_ids.data(), a_counts.data(), a_ids.size(),
                               b_ids.data(), b_counts.data(), b_ids.size());
        ASSERT_EQ(got, want) << simd::IsaName(isa) << " |a|=" << a_ids.size()
                             << " |b|=" << b_ids.size()
                             << " space=" << id_space;
      }
    }
  }
}

TEST(KernelEquivalenceTest, IntersectDisjointAndIdenticalArrays) {
  const simd::KernelTable& scalar = KernelsFor(Isa::kScalar);
  std::vector<uint32_t> evens, odds;
  std::vector<uint64_t> ec, oc;
  for (uint32_t i = 0; i < 1000; ++i) {
    evens.push_back(2 * i);
    ec.push_back(3);
    odds.push_back(2 * i + 1);
    oc.push_back(5);
  }
  for (Isa isa : VectorTiers()) {
    const simd::KernelTable& vec = KernelsFor(isa);
    EXPECT_EQ(vec.intersect_size(evens.data(), ec.data(), evens.size(),
                                 odds.data(), oc.data(), odds.size()),
              0u);
    const uint64_t self_want = scalar.intersect_size(
        evens.data(), ec.data(), evens.size(), evens.data(), ec.data(),
        evens.size());
    EXPECT_EQ(vec.intersect_size(evens.data(), ec.data(), evens.size(),
                                 evens.data(), ec.data(), evens.size()),
              self_want);
    EXPECT_EQ(self_want, 3u * 1000u);
  }
}

// --- CodedConjunction::EvaluateAll: forced-scalar vs native dispatch --------

// The probe mix covers the vectorizable forms (eq-only, eq+range,
// range-only) and every fallback form (never-match, unknown attribute,
// kLike errors) whose error-ordering semantics the vector path must not
// disturb.
std::vector<SelectionQuery> ProbeMix() {
  std::vector<SelectionQuery> probes;
  {
    SelectionQuery q;  // eq-only conjunction
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("Toyota")));
    q.AddPredicate(Predicate::Eq("Model", Value::Cat("Camry")));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // eq + range
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("Honda")));
    q.AddPredicate(Predicate("Price", CompareOp::kLe, Value::Num(15000)));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // range-only, straddling block boundaries
    q.AddPredicate(Predicate("Mileage", CompareOp::kLt, Value::Num(60000)));
    q.AddPredicate(Predicate("Price", CompareOp::kGe, Value::Num(4000)));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // never-match: absent value
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("NoSuchMake")));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // never-match: null query value
    q.AddPredicate(Predicate::Eq("Make", Value()));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // unknown attribute: compile error surfaced lazily
    q.AddPredicate(Predicate::Eq("NoSuchAttr", Value::Cat("x")));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // kLike on a bound column: per-row error semantics
    q.AddPredicate(Predicate("Make", CompareOp::kLike, Value::Cat("%oyo%")));
    probes.push_back(std::move(q));
  }
  {
    SelectionQuery q;  // false-before-error ordering must be preserved
    q.AddPredicate(Predicate::Eq("Make", Value::Cat("NoSuchMake")));
    q.AddPredicate(Predicate("Make", CompareOp::kLike, Value::Cat("%x%")));
    probes.push_back(std::move(q));
  }
  probes.emplace_back();  // empty query: every row
  return probes;
}

void ExpectScalarAndNativeAgree(const ColumnarRelation& cols,
                                const std::vector<SelectionQuery>& probes) {
  for (size_t qi = 0; qi < probes.size(); ++qi) {
    const CodedConjunction compiled = CodedConjunction::Compile(probes[qi], cols);
    auto eval_under = [&compiled](const char* isa_name) {
      ScopedIsa isa(isa_name);
      return compiled.EvaluateAll();
    };
    const auto native = eval_under("native");
    const auto forced = eval_under("scalar");
    ASSERT_EQ(native.ok(), forced.ok()) << "query " << qi;
    if (!native.ok()) {
      EXPECT_EQ(native.status().ToString(), forced.status().ToString())
          << "query " << qi;
      continue;
    }
    EXPECT_EQ(*native, *forced) << "query " << qi;
  }
}

TEST(ProbeScanEquivalenceTest, CarDbPlainAndPackedSnapshots) {
  CarDbSpec spec;
  spec.num_tuples = 5000;
  spec.seed = 2006;
  const CarDbGenerator gen(spec);

  const Relation rows = gen.Generate();
  ExpectScalarAndNativeAgree(*rows.columnar(), ProbeMix());

  auto packed = gen.GenerateColumnar(ColumnarBuilder::Options());
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  ExpectScalarAndNativeAgree(**packed, ProbeMix());
}

TEST(ProbeScanEquivalenceTest, CensusDbRandomConjunctions) {
  CensusDbSpec spec;
  spec.num_tuples = 4000;
  spec.seed = 7;
  Relation sample = CensusDbGenerator(spec).Generate().relation;
  auto cols = sample.columnar();

  Rng rng(99);
  const Schema& schema = sample.schema();
  std::vector<SelectionQuery> probes;
  for (int trial = 0; trial < 30; ++trial) {
    SelectionQuery q;
    const size_t num_preds = 1 + rng.Uniform(3);
    for (size_t p = 0; p < num_preds; ++p) {
      const size_t attr = rng.Uniform(schema.NumAttributes());
      const Tuple& t = sample.tuple(rng.Uniform(sample.NumTuples()));
      const std::string& name = schema.attribute(attr).name;
      if (schema.attribute(attr).type == AttrType::kCategorical) {
        q.AddPredicate(Predicate::Eq(name, t.At(attr)));
      } else {
        static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kLt,
                                         CompareOp::kLe, CompareOp::kGt,
                                         CompareOp::kGe};
        q.AddPredicate(Predicate(name, kOps[rng.Uniform(5)], t.At(attr)));
      }
    }
    probes.push_back(std::move(q));
  }
  ExpectScalarAndNativeAgree(*cols, probes);
}

// --- StrippedPartition::FromColumnCoded: scalar vs native -------------------

TEST(PartitionKernelEquivalenceTest, ClassesIdenticalAcrossDispatchTiers) {
  CarDbSpec car;
  car.num_tuples = 3000;
  car.seed = 5;
  Relation car_sample = CarDbGenerator(car).Generate();

  CensusDbSpec census;
  census.num_tuples = 3000;
  census.seed = 5;
  Relation census_sample = CensusDbGenerator(census).Generate().relation;

  for (const Relation* sample : {&car_sample, &census_sample}) {
    auto cols = sample->columnar();
    for (size_t a = 0; a < sample->schema().NumAttributes(); ++a) {
      const StrippedPartition native =
          StrippedPartition::FromColumnCoded(*cols, a);
      ScopedIsa isa("scalar");
      const StrippedPartition forced =
          StrippedPartition::FromColumnCoded(*cols, a);
      ASSERT_EQ(native.classes(), forced.classes()) << "attr " << a;
      EXPECT_EQ(native.NumClasses(), forced.NumClasses());
      EXPECT_EQ(native.NumCoveredRows(), forced.NumCoveredRows());
    }
  }
}

// --- CodedBag Jaccard: exact double equality across tiers -------------------

TEST(BagKernelEquivalenceTest, JaccardDoublesIdenticalAcrossDispatchTiers) {
  Rng rng(12);
  std::vector<std::pair<CodedBag, CodedBag>> cases;
  // Balanced, overlapping, and gallop-skewed (5 vs 10000) bag pairs.
  const std::pair<size_t, size_t> kShapes[] = {
      {0, 0}, {0, 50}, {16, 16}, {256, 300}, {5, 10000}, {10000, 5}};
  for (const auto& [an, bn] : kShapes) {
    CodedBag a, b;
    for (size_t i = 0; i < an; ++i) {
      a.Add(static_cast<uint32_t>(rng.Uniform(an + bn + 1)), 1 + rng.Uniform(9));
    }
    for (size_t i = 0; i < bn; ++i) {
      b.Add(static_cast<uint32_t>(rng.Uniform(an + bn + 1)), 1 + rng.Uniform(9));
    }
    a.Finalize();
    b.Finalize();
    cases.emplace_back(std::move(a), std::move(b));
  }
  // Disjoint pair.
  {
    CodedBag a, b;
    for (uint32_t i = 0; i < 500; ++i) {
      a.Add(2 * i, 2);
      b.Add(2 * i + 1, 2);
    }
    a.Finalize();
    b.Finalize();
    cases.emplace_back(std::move(a), std::move(b));
  }
  for (const auto& [a, b] : cases) {
    double native_j, native_i;
    {
      ScopedIsa isa("native");
      native_i = static_cast<double>(a.IntersectionSize(b));
      native_j = a.JaccardSimilarity(b);
    }
    ScopedIsa isa("scalar");
    // Exact IEEE equality: the SIMD intersection must produce the same
    // integer sums, hence the same single division.
    ASSERT_EQ(static_cast<double>(a.IntersectionSize(b)), native_i);
    ASSERT_EQ(a.JaccardSimilarity(b), native_j);
  }
}

// --- End-to-end: ranked engine answers across dispatch tiers ----------------

std::vector<RankedAnswer> RankedAnswersOnce(const ImpreciseQuery& q) {
  CarDbSpec spec;
  spec.num_tuples = 4000;
  spec.seed = 41;
  WebDatabase db("CarDB", CarDbGenerator(spec).Generate());
  AimqOptions options;
  options.collector.sample_size = 2000;
  options.top_k = 10;
  auto knowledge = BuildKnowledge(db, options);
  EXPECT_TRUE(knowledge.ok()) << knowledge.status().ToString();
  AimqEngine engine(&db, knowledge.TakeValue(), options);
  auto answers = engine.Answer(q);
  EXPECT_TRUE(answers.ok()) << answers.status().ToString();
  return answers.ok() ? *answers : std::vector<RankedAnswer>{};
}

TEST(EngineKernelEquivalenceTest, RankedAnswersIdenticalScalarVsNative) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));

  const std::vector<RankedAnswer> native = RankedAnswersOnce(q);
  ScopedIsa isa("scalar");
  const std::vector<RankedAnswer> forced = RankedAnswersOnce(q);

  ASSERT_FALSE(native.empty());
  ASSERT_EQ(native.size(), forced.size());
  for (size_t i = 0; i < native.size(); ++i) {
    ASSERT_TRUE(native[i].tuple == forced[i].tuple) << "rank " << i;
    ASSERT_EQ(native[i].similarity, forced[i].similarity) << "rank " << i;
  }
}

}  // namespace
}  // namespace aimq
