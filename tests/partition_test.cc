#include "afd/partition.h"

#include <gtest/gtest.h>

#include <tuple>

namespace aimq {
namespace {

Schema AbSchema() {
  return Schema::Make({{"A", AttrType::kCategorical},
                       {"B", AttrType::kCategorical},
                       {"C", AttrType::kNumeric}})
      .ValueOrDie();
}

Relation AbRelation(const std::vector<std::tuple<const char*, const char*,
                                                 double>>& rows) {
  Relation r(AbSchema());
  for (const auto& [a, b, c] : rows) {
    EXPECT_TRUE(
        r.Append(Tuple({Value::Cat(a), Value::Cat(b), Value::Num(c)})).ok());
  }
  return r;
}

TEST(StrippedPartitionTest, UniverseHasOneClass) {
  StrippedPartition p = StrippedPartition::Universe(5);
  EXPECT_EQ(p.num_rows(), 5u);
  ASSERT_EQ(p.classes().size(), 1u);
  EXPECT_EQ(p.classes()[0].size(), 5u);
  EXPECT_EQ(p.NumClasses(), 1u);
}

TEST(StrippedPartitionTest, UniverseOfOneRowIsStripped) {
  StrippedPartition p = StrippedPartition::Universe(1);
  EXPECT_TRUE(p.classes().empty());
  EXPECT_EQ(p.NumClasses(), 1u);
}

TEST(StrippedPartitionTest, FromColumnGroupsEqualValues) {
  Relation r = AbRelation({{"x", "1", 0},
                           {"y", "1", 1},
                           {"x", "2", 2},
                           {"z", "2", 3},
                           {"x", "3", 4}});
  StrippedPartition p = StrippedPartition::FromColumn(r, 0);
  // x → {0,2,4}; y and z are singletons (stripped).
  ASSERT_EQ(p.classes().size(), 1u);
  EXPECT_EQ(p.classes()[0], (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(p.NumClasses(), 3u);
  EXPECT_EQ(p.NumCoveredRows(), 3u);
}

TEST(StrippedPartitionTest, NullsFormOneClass) {
  Relation r(AbSchema());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Cat("1"), Value::Num(0)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Cat("2"), Value::Num(1)})).ok());
  ASSERT_TRUE(
      r.Append(Tuple({Value::Cat("x"), Value::Cat("3"), Value::Num(2)})).ok());
  StrippedPartition p = StrippedPartition::FromColumn(r, 0);
  ASSERT_EQ(p.classes().size(), 1u);
  EXPECT_EQ(p.classes()[0], (std::vector<size_t>{0, 1}));
}

TEST(StrippedPartitionTest, ProductRefines) {
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "1", 1},
                           {"x", "2", 2},
                           {"y", "1", 3},
                           {"y", "1", 4}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition pb = StrippedPartition::FromColumn(r, 1);
  StrippedPartition pab = pa.Product(pb);
  // Classes on {A,B}: {0,1} (x,1), {3,4} (y,1); singletons: 2.
  ASSERT_EQ(pab.classes().size(), 2u);
  EXPECT_EQ(pab.classes()[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(pab.classes()[1], (std::vector<size_t>{3, 4}));
  EXPECT_EQ(pab.NumClasses(), 3u);
}

TEST(StrippedPartitionTest, ProductIsCommutativeInClasses) {
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "2", 1},
                           {"y", "1", 2},
                           {"x", "1", 3},
                           {"y", "2", 4},
                           {"y", "1", 5}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition pb = StrippedPartition::FromColumn(r, 1);
  EXPECT_EQ(pa.Product(pb).classes(), pb.Product(pa).classes());
}

TEST(StrippedPartitionTest, ProductWithUniverseIsIdentity) {
  Relation r = AbRelation(
      {{"x", "1", 0}, {"x", "2", 1}, {"y", "1", 2}, {"x", "1", 3}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition universe = StrippedPartition::Universe(r.NumTuples());
  EXPECT_EQ(universe.Product(pa).classes(), pa.classes());
  EXPECT_EQ(pa.Product(universe).classes(), pa.classes());
}

TEST(StrippedPartitionTest, KeyErrorZeroForUniqueColumn) {
  Relation r = AbRelation({{"x", "1", 0}, {"y", "2", 1}, {"z", "3", 2}});
  StrippedPartition p = StrippedPartition::FromColumn(r, 0);
  EXPECT_DOUBLE_EQ(p.KeyError(), 0.0);
}

TEST(StrippedPartitionTest, KeyErrorCountsDuplicates) {
  // 6 rows, A values: x,x,x,y,y,z → |π| = 3 → error = (6−3)/6 = 0.5.
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "2", 1},
                           {"x", "3", 2},
                           {"y", "4", 3},
                           {"y", "5", 4},
                           {"z", "6", 5}});
  StrippedPartition p = StrippedPartition::FromColumn(r, 0);
  EXPECT_DOUBLE_EQ(p.KeyError(), 0.5);
}

TEST(StrippedPartitionTest, FdErrorZeroWhenFdHolds) {
  // A → B holds exactly.
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "1", 1},
                           {"y", "2", 2},
                           {"y", "2", 3}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition pab =
      pa.Product(StrippedPartition::FromColumn(r, 1));
  EXPECT_DOUBLE_EQ(pa.FdError(pab), 0.0);
}

TEST(StrippedPartitionTest, FdErrorCountsMinorityRows) {
  // A=x maps to B=1,1,2: one violating row out of 5 total.
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "1", 1},
                           {"x", "2", 2},
                           {"y", "3", 3},
                           {"y", "3", 4}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition pab = pa.Product(StrippedPartition::FromColumn(r, 1));
  EXPECT_DOUBLE_EQ(pa.FdError(pab), 0.2);
}

TEST(StrippedPartitionTest, FdErrorAllSingletonRhs) {
  // A=x class of 4 rows, B all distinct: keep one row, remove 3 of 4.
  Relation r = AbRelation({{"x", "1", 0},
                           {"x", "2", 1},
                           {"x", "3", 2},
                           {"x", "4", 3}});
  StrippedPartition pa = StrippedPartition::FromColumn(r, 0);
  StrippedPartition pab = pa.Product(StrippedPartition::FromColumn(r, 1));
  EXPECT_DOUBLE_EQ(pa.FdError(pab), 0.75);
}

TEST(StrippedPartitionTest, EmptyRelationEdgeCases) {
  StrippedPartition p = StrippedPartition::Universe(0);
  EXPECT_DOUBLE_EQ(p.KeyError(), 0.0);
  EXPECT_EQ(p.NumClasses(), 0u);
}

}  // namespace
}  // namespace aimq
