#include "util/coded_bag.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bag.h"
#include "util/rng.h"

namespace aimq {
namespace {

TEST(CodedBagTest, CountsAndSizes) {
  CodedBag b;
  b.Add(3);
  b.Add(1);
  b.Add(3);
  b.Add(7, 2);
  b.Finalize();
  EXPECT_EQ(b.Count(3), 2u);
  EXPECT_EQ(b.Count(1), 1u);
  EXPECT_EQ(b.Count(7), 2u);
  EXPECT_EQ(b.Count(99), 0u);
  EXPECT_EQ(b.DistinctSize(), 3u);
  EXPECT_EQ(b.TotalSize(), 5u);
  EXPECT_FALSE(b.Empty());
  // entries() is sorted by id.
  ASSERT_EQ(b.entries().size(), 3u);
  EXPECT_EQ(b.entries()[0].first, 1u);
  EXPECT_EQ(b.entries()[1].first, 3u);
  EXPECT_EQ(b.entries()[2].first, 7u);
}

TEST(CodedBagTest, FinalizeIsIdempotent) {
  CodedBag b;
  b.Add(5);
  b.Finalize();
  b.Finalize();
  EXPECT_EQ(b.Count(5), 1u);
  b.Add(5);
  b.Finalize();
  EXPECT_EQ(b.Count(5), 2u);
}

TEST(CodedBagTest, EmptyBagsHaveZeroJaccard) {
  CodedBag a, b;
  EXPECT_EQ(a.JaccardSimilarity(b), 0.0);
  EXPECT_EQ(a.IntersectionSize(b), 0u);
  EXPECT_EQ(a.UnionSize(b), 0u);
}

TEST(CodedBagTest, MergeIntersectionMatchesMinSemantics) {
  CodedBag a, b;
  a.Add(1, 3);
  a.Add(2, 1);
  a.Add(4, 2);
  b.Add(1, 1);
  b.Add(3, 5);
  b.Add(4, 4);
  a.Finalize();
  b.Finalize();
  // min(3,1) + 0 + 0 + min(2,4) = 3
  EXPECT_EQ(a.IntersectionSize(b), 3u);
  // max-per-id union = |A| + |B| - |A∩B| = 6 + 10 - 3
  EXPECT_EQ(a.UnionSize(b), 13u);
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(b), 3.0 / 13.0);
  EXPECT_EQ(a.IntersectionSize(b), b.IntersectionSize(a));
  EXPECT_EQ(a.UnionSize(b), b.UnionSize(a));
}

// The invariant the supertuple refactor rests on: when ids are in bijection
// with keywords, CodedBag computes the exact integers Bag computes, and the
// final Jaccard double is the same single division — bit-identical.
TEST(CodedBagTest, MatchesStringBagOnRandomData) {
  Rng rng(2006);
  for (int trial = 0; trial < 50; ++trial) {
    Bag sa, sb;
    CodedBag ca, cb;
    const size_t vocab = 1 + rng.Uniform(20);
    const size_t adds_a = rng.Uniform(60);
    const size_t adds_b = rng.Uniform(60);
    for (size_t i = 0; i < adds_a; ++i) {
      uint32_t id = static_cast<uint32_t>(rng.Uniform(vocab));
      sa.Add("kw" + std::to_string(id));
      ca.Add(id);
    }
    for (size_t i = 0; i < adds_b; ++i) {
      uint32_t id = static_cast<uint32_t>(rng.Uniform(vocab));
      sb.Add("kw" + std::to_string(id));
      cb.Add(id);
    }
    ca.Finalize();
    cb.Finalize();
    ASSERT_EQ(ca.TotalSize(), sa.TotalSize());
    ASSERT_EQ(ca.DistinctSize(), sa.DistinctSize());
    ASSERT_EQ(ca.IntersectionSize(cb), sa.IntersectionSize(sb));
    ASSERT_EQ(ca.UnionSize(cb), sa.UnionSize(sb));
    // Same integer operands, same division: exact double equality.
    double coded = ca.JaccardSimilarity(cb);
    double strung = sa.JaccardSimilarity(sb);
    ASSERT_EQ(coded, strung) << "trial " << trial;
  }
}

}  // namespace
}  // namespace aimq
