// Sharding determinism contract (DESIGN.md §5h): the scatter/gather facade
// and the ShardedEngine built on it must answer bit-identically to the
// unsharded source/engine at every shard count, thread count, snapshot mode
// (plain or packed shards), and ISA tier. Also pins the row-range plan and
// the per-shard posting lists for packed snapshots.

#include "shard/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/knowledge.h"
#include "datagen/cardb.h"
#include "query/predicate.h"
#include "shard/shard_plan.h"
#include "simd/dispatch.h"

namespace aimq {
namespace {

using simd::Isa;

// Forces a dispatch tier for one scope, restoring the prior tier after.
// ctest runs every case in its own process, so the force cannot leak.
class ScopedIsa {
 public:
  explicit ScopedIsa(const char* name) : prev_(simd::ActiveIsa()) {
    EXPECT_TRUE(simd::ForceIsa(name).ok());
  }
  ~ScopedIsa() { (void)simd::ForceIsa(simd::IsaName(prev_)); }

 private:
  Isa prev_;
};

// ---------------------------------------------------------------------------
// Row-range planning.

TEST(ShardPlanTest, EvenSplit) {
  const std::vector<ShardRange> plan = PlanRowRanges(100, 4);
  ASSERT_EQ(plan.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(plan[i].begin, 25 * i);
    EXPECT_EQ(plan[i].end, 25 * (i + 1));
  }
}

TEST(ShardPlanTest, RemainderGoesToLeadingShards) {
  const std::vector<ShardRange> plan = PlanRowRanges(10, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].NumRows(), 4u);
  EXPECT_EQ(plan[1].NumRows(), 3u);
  EXPECT_EQ(plan[2].NumRows(), 3u);
}

TEST(ShardPlanTest, ZeroShardsMeansOne) {
  const std::vector<ShardRange> plan = PlanRowRanges(7, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].begin, 0u);
  EXPECT_EQ(plan[0].end, 7u);
}

TEST(ShardPlanTest, MoreShardsThanRowsLeavesEmptyTails) {
  const std::vector<ShardRange> plan = PlanRowRanges(3, 7);
  ASSERT_EQ(plan.size(), 7u);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(plan[i].NumRows(), 1u);
  for (size_t i = 3; i < 7; ++i) EXPECT_EQ(plan[i].NumRows(), 0u);
}

TEST(ShardPlanTest, RangesAreContiguousDisjointAndCoverEveryRow) {
  for (size_t rows : {0u, 1u, 5u, 97u, 1000u}) {
    for (size_t shards = 1; shards <= 9; ++shards) {
      const std::vector<ShardRange> plan = PlanRowRanges(rows, shards);
      ASSERT_EQ(plan.size(), shards);
      uint32_t next = 0;
      for (const ShardRange& range : plan) {
        EXPECT_EQ(range.begin, next);
        EXPECT_LE(range.begin, range.end);
        next = range.end;
      }
      EXPECT_EQ(next, rows) << rows << " rows over " << shards << " shards";
    }
  }
}

// ---------------------------------------------------------------------------
// Facade + engine equivalence over a real CarDB.

class ShardedEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    options_ = new AimqOptions();
    options_->collector.sample_size = 300;
    options_->tsim = 0.4;
    options_->top_k = 10;
    options_->base_set_limit = 12;  // small enough that every test query
                                    // exercises the sharded top-k trim
    // No evictions: with coalescing on, an eviction-free cache makes probe
    // accounting (miss exactly once per distinct key) deterministic even
    // under the parallel relaxation fan-out — which is what the stats
    // comparison below asserts.
    options_->probe_cache_capacity = 1 << 15;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
  }

  static std::unique_ptr<ShardedWebDatabase> MakeFacade(size_t shards,
                                                        bool packed) {
    ShardedEngineOptions sharding;
    sharding.num_shards = shards;
    sharding.packed_shards = packed;
    auto facade = ShardedWebDatabase::Create(*db_, sharding);
    EXPECT_TRUE(facade.ok()) << facade.status().ToString();
    return facade.TakeValue();
  }

  static WebDatabase* db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* ShardedEngineTest::db_ = nullptr;
AimqOptions* ShardedEngineTest::options_ = nullptr;
MinedKnowledge* ShardedEngineTest::knowledge_ = nullptr;

SelectionQuery MakeQuery(std::vector<Predicate> predicates) {
  return SelectionQuery(std::move(predicates));
}

std::vector<ImpreciseQuery> TestQueries() {
  std::vector<ImpreciseQuery> queries;
  for (const char* model : {"Camry", "Civic", "Altima", "Outback"}) {
    ImpreciseQuery q;
    q.Bind("Model", Value::Cat(model));
    queries.push_back(std::move(q));
  }
  ImpreciseQuery two;
  two.Bind("Model", Value::Cat("Accord"));
  two.Bind("Price", Value::Num(10000));
  queries.push_back(std::move(two));
  return queries;
}

TEST_F(ShardedEngineTest, FacadeRowsMatchSourceExactly) {
  const std::vector<SelectionQuery> probes = {
      MakeQuery({Predicate::Eq("Model", Value::Cat("Camry"))}),
      MakeQuery({Predicate::Eq("Make", Value::Cat("Toyota"))}),
      MakeQuery({Predicate::Eq("Make", Value::Cat("Toyota")),
                 Predicate::Eq("Model", Value::Cat("Camry"))}),
      MakeQuery({Predicate::Eq("Model", Value::Cat("Camry")),
                 Predicate::Eq("Model", Value::Cat("Civic"))}),  // empty
  };
  for (size_t shards : {1u, 2u, 3u, 7u}) {
    auto facade = MakeFacade(shards, /*packed=*/false);
    ASSERT_EQ(facade->num_shards(), shards);
    for (const SelectionQuery& probe : probes) {
      auto expected = db_->ExecuteRows(probe);
      ASSERT_TRUE(expected.ok());
      auto actual = facade->ExecuteRows(probe);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*actual, *expected)
          << probe.ToString() << " over " << shards << " shards";
      EXPECT_TRUE(std::is_sorted(actual->begin(), actual->end()));
    }
  }
}

// Satellite regression: packed shard snapshots build per-shard posting
// lists, and the index-assisted probe path pins the exact row ids the
// unsharded plain source returns.
TEST_F(ShardedEngineTest, PackedShardsWithPostingsPinIdenticalRowIds) {
  auto facade = MakeFacade(/*shards=*/3, /*packed=*/true);
  for (size_t i = 0; i < facade->num_shards(); ++i) {
    EXPECT_TRUE(facade->shard(i).db->has_posting_lists()) << "shard " << i;
    EXPECT_TRUE(facade->shard(i).db->columnar()->packed()) << "shard " << i;
  }
  const std::vector<SelectionQuery> probes = {
      MakeQuery({Predicate::Eq("Model", Value::Cat("Camry"))}),
      MakeQuery({Predicate::Eq("Make", Value::Cat("Honda"))}),
      MakeQuery({Predicate::Eq("Make", Value::Cat("Nissan")),
                 Predicate::Eq("Model", Value::Cat("Altima"))}),
  };
  for (const SelectionQuery& probe : probes) {
    auto expected = db_->ExecuteRows(probe);
    ASSERT_TRUE(expected.ok());
    auto actual = facade->ExecuteRows(probe);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(*actual, *expected) << probe.ToString();
  }
}

TEST_F(ShardedEngineTest, FacadeRejectsLikeQueriesWithSourceErrorText) {
  auto facade = MakeFacade(/*shards=*/2, /*packed=*/false);
  const SelectionQuery bad =
      MakeQuery({Predicate::Like("Model", Value::Cat("Camry"))});
  auto from_source = db_->ExecuteRows(bad);
  auto from_facade = facade->ExecuteRows(bad);
  ASSERT_FALSE(from_source.ok());
  ASSERT_FALSE(from_facade.ok());
  EXPECT_EQ(from_facade.status().ToString(), from_source.status().ToString());
}

TEST_F(ShardedEngineTest, FacadeAccountsProbesLikeTheSource) {
  auto facade = MakeFacade(/*shards=*/3, /*packed=*/false);
  const SelectionQuery probe =
      MakeQuery({Predicate::Eq("Model", Value::Cat("Camry"))});
  auto rows = facade->ExecuteRows(probe);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(facade->stats().queries_issued.load(), 1u);
  EXPECT_EQ(facade->stats().tuples_returned.load(), rows->size());
  // Per-shard accounting covers the whole row space and sums to the probe.
  const std::vector<ShardProbeSnapshot> shards = facade->ShardStats();
  ASSERT_EQ(shards.size(), 3u);
  uint64_t shard_tuples = 0;
  for (const ShardProbeSnapshot& s : shards) {
    EXPECT_EQ(s.queries_issued, 1u) << "shard " << s.shard;
    shard_tuples += s.tuples_returned;
  }
  EXPECT_EQ(shard_tuples, rows->size());
}

TEST_F(ShardedEngineTest, RankTopKMergesLikeSerialTopKWithRowIdTieBreak) {
  auto facade = MakeFacade(/*shards=*/3, /*packed=*/false);
  std::vector<uint32_t> rows;
  for (uint32_t row = 0; row < 600; row += 2) rows.push_back(row);
  // Heavily tied scores: the merge must break ties by ascending row id,
  // exactly like a serial TopK fed ascending rows.
  const auto score = [](uint32_t row) {
    return static_cast<double>(row % 5);
  };
  for (size_t k : {1u, 7u, 50u, 600u}) {
    const auto ranked = facade->RankTopK(rows, k, score);
    std::vector<std::pair<double, uint32_t>> expected;
    for (uint32_t row : rows) expected.emplace_back(score(row), row);
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first != b.first) return a.first > b.first;
                       return a.second < b.second;
                     });
    if (expected.size() > k) expected.resize(k);
    EXPECT_EQ(ranked, expected) << "k=" << k;
  }
}

// The property: for every (shards, threads, snapshot mode) configuration,
// answers, similarity scores, and probe-accounting totals are bit-identical
// to a serial single-shard engine. Probe coalescing (on by default) makes
// even the stats deterministic under the parallel fan-out: each distinct
// probe key is scanned exactly once per cache residency.
void ExpectShardedMatchesSerial(const WebDatabase& db,
                                const MinedKnowledge& knowledge,
                                const AimqOptions& base_options,
                                size_t num_shards, size_t num_threads,
                                bool packed) {
  AimqOptions serial = base_options;
  serial.num_threads = 1;
  AimqEngine reference(&db, knowledge, serial);

  AimqOptions eopts = base_options;
  eopts.num_threads = num_threads;
  ShardedEngineOptions sharding;
  sharding.num_shards = num_shards;
  sharding.packed_shards = packed;
  ShardedEngine sharded(&db, knowledge, eopts, sharding);
  ASSERT_TRUE(sharded.build_status().ok())
      << sharded.build_status().ToString();
  ASSERT_EQ(sharded.num_shards(), num_shards);

  for (const ImpreciseQuery& query : TestQueries()) {
    RelaxationStats want_stats;
    auto want = reference.Answer(query, RelaxationStrategy::kGuided,
                                 &want_stats);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    RelaxationStats got_stats;
    auto got = sharded.Answer(query, RelaxationStrategy::kGuided, &got_stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    ASSERT_EQ(got->size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*got)[i].tuple, (*want)[i].tuple) << "answer " << i;
      EXPECT_EQ((*got)[i].similarity, (*want)[i].similarity) << "answer " << i;
    }
    EXPECT_EQ(got_stats.queries_issued.load(), want_stats.queries_issued.load());
    EXPECT_EQ(got_stats.tuples_extracted.load(),
              want_stats.tuples_extracted.load());
    EXPECT_EQ(got_stats.tuples_relevant.load(),
              want_stats.tuples_relevant.load());
    EXPECT_EQ(got_stats.cache_hits.load(), want_stats.cache_hits.load());
  }
}

TEST_F(ShardedEngineTest, AnswersBitIdenticalAcrossShardAndThreadCounts) {
  for (size_t shards : {1u, 2u, 3u, 7u}) {
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ExpectShardedMatchesSerial(*db_, *knowledge_, *options_, shards,
                                 threads, /*packed=*/false);
    }
  }
}

TEST_F(ShardedEngineTest, AnswersBitIdenticalWithPackedShards) {
  for (size_t shards : {2u, 3u}) {
    for (size_t threads : {1u, 4u}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " threads=" << threads);
      ExpectShardedMatchesSerial(*db_, *knowledge_, *options_, shards,
                                 threads, /*packed=*/true);
    }
  }
}

TEST_F(ShardedEngineTest, AnswersBitIdenticalUnderForcedScalarIsa) {
  // The serial reference inside runs under the same forced tier; the fixture
  // knowledge was mined at native. Scoring is ISA-invariant (the kernel
  // equivalence contract), so answers must not move.
  ScopedIsa scalar("scalar");
  ExpectShardedMatchesSerial(*db_, *knowledge_, *options_, /*num_shards=*/3,
                             /*num_threads=*/4, /*packed=*/false);
}

TEST_F(ShardedEngineTest, ScatterThreadsDoNotChangeAnswers) {
  const SelectionQuery probe =
      MakeQuery({Predicate::Eq("Make", Value::Cat("Toyota"))});
  auto expected = db_->ExecuteRows(probe);
  ASSERT_TRUE(expected.ok());
  ShardedEngineOptions sharding;
  sharding.num_shards = 4;
  sharding.scatter_threads = 3;
  auto facade = ShardedWebDatabase::Create(*db_, sharding);
  ASSERT_TRUE(facade.ok()) << facade.status().ToString();
  auto actual = (*facade)->ExecuteRows(probe);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*actual, *expected);
}

}  // namespace
}  // namespace aimq
