#include "ordering/dependence_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace aimq {
namespace {

Schema Abcd() {
  return Schema::Make({{"A", AttrType::kCategorical},
                       {"B", AttrType::kCategorical},
                       {"C", AttrType::kCategorical},
                       {"D", AttrType::kCategorical}})
      .ValueOrDie();
}

MinedDependencies AcyclicDeps() {
  MinedDependencies deps;
  deps.num_attributes = 4;
  deps.afds.push_back(Afd{AttrBit(0), 1, 0.1});              // A → B (0.9)
  deps.afds.push_back(Afd{AttrBit(0) | AttrBit(1), 2, 0.2}); // AB → C (0.8)
  return deps;
}

MinedDependencies CyclicDeps() {
  MinedDependencies deps = AcyclicDeps();
  deps.afds.push_back(Afd{AttrBit(2), 0, 0.3});  // C → A closes a cycle
  return deps;
}

TEST(DependenceGraphTest, EdgeWeightsApportionAfdSupport) {
  DependenceGraph g =
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps());
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.9);       // A → B
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 0.4);       // half of AB → C
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.4);       // half of AB → C
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.0);
  EXPECT_NEAR(g.TotalWeight(), 0.9 + 0.8, 1e-12);
}

TEST(DependenceGraphTest, CycleDetection) {
  EXPECT_FALSE(
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps()).HasCycle());
  EXPECT_TRUE(
      DependenceGraph::FromDependencies(Abcd(), CyclicDeps()).HasCycle());
}

TEST(DependenceGraphTest, SccSummary) {
  DependenceGraph acyclic =
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps());
  EXPECT_EQ(acyclic.Sccs().num_nontrivial, 0u);

  DependenceGraph cyclic =
      DependenceGraph::FromDependencies(Abcd(), CyclicDeps());
  auto summary = cyclic.Sccs();
  EXPECT_EQ(summary.num_nontrivial, 1u);
  EXPECT_EQ(summary.largest, 3u);  // A, B?... A→B, AB→C, C→A: A,C strongly
                                   // connected; B in the cycle via A→B? B→C
                                   // edge exists, C→A, A→B: yes {A,B,C}.
}

TEST(DependenceGraphTest, TopoOrderOnDagDropsNothing) {
  DependenceGraph g =
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps());
  auto topo = g.GreedyTopologicalOrder();
  EXPECT_DOUBLE_EQ(topo.dropped_weight, 0.0);
  ASSERT_EQ(topo.relax_order.size(), 4u);
  // A decides the most, so it must be relaxed last; C and D decide nothing.
  EXPECT_EQ(topo.relax_order.back(), 0u);
  auto pos = [&](size_t attr) {
    return std::find(topo.relax_order.begin(), topo.relax_order.end(), attr) -
           topo.relax_order.begin();
  };
  EXPECT_LT(pos(2), pos(1));  // C relaxed before B (B decides C)
}

TEST(DependenceGraphTest, TopoOrderOnCycleDropsWeight) {
  DependenceGraph g =
      DependenceGraph::FromDependencies(Abcd(), CyclicDeps());
  auto topo = g.GreedyTopologicalOrder();
  EXPECT_GT(topo.dropped_weight, 0.0);
  EXPECT_GT(topo.dropped_fraction, 0.0);
  EXPECT_LT(topo.dropped_fraction, 1.0);
  EXPECT_EQ(topo.relax_order.size(), 4u);
}

TEST(DependenceGraphTest, EmptyGraphBehaves) {
  MinedDependencies deps;
  deps.num_attributes = 4;
  DependenceGraph g = DependenceGraph::FromDependencies(Abcd(), deps);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
  auto topo = g.GreedyTopologicalOrder();
  EXPECT_EQ(topo.relax_order.size(), 4u);
  EXPECT_DOUBLE_EQ(topo.dropped_fraction, 0.0);
}

TEST(DependenceGraphTest, DotContainsNodesAndEdges) {
  DependenceGraph g =
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps());
  std::string dot = g.ToDot(Abcd());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
  EXPECT_EQ(dot.find("\"B\" -> \"A\""), std::string::npos);
}

TEST(DependenceGraphTest, DotMinWeightFiltersEdges) {
  DependenceGraph g =
      DependenceGraph::FromDependencies(Abcd(), AcyclicDeps());
  std::string dot = g.ToDot(Abcd(), 0.5);
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);   // 0.9 > 0.5
  EXPECT_EQ(dot.find("\"A\" -> \"C\""), std::string::npos);   // 0.4 <= 0.5
}

}  // namespace
}  // namespace aimq
