#include "core/persist.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <unistd.h>

#include "core/engine.h"
#include "util/csv.h"
#include "datagen/cardb.h"

namespace aimq {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("aimq_persist_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);

    CarDbSpec spec;
    spec.num_tuples = 4000;
    spec.seed = 3;
    CarDbGenerator generator(spec);
    db_ = std::make_unique<WebDatabase>("CarDB", generator.Generate());
    options_.collector.sample_size = 2000;
    auto knowledge = BuildKnowledge(*db_, options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = std::make_unique<MinedKnowledge>(knowledge.TakeValue());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::unique_ptr<WebDatabase> db_;
  std::unique_ptr<MinedKnowledge> knowledge_;
  AimqOptions options_;
};

TEST_F(PersistTest, RoundTripsDependencies) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const MinedDependencies& a = knowledge_->dependencies;
  const MinedDependencies& b = loaded->dependencies;
  ASSERT_EQ(a.afds.size(), b.afds.size());
  for (size_t i = 0; i < a.afds.size(); ++i) {
    EXPECT_EQ(a.afds[i].lhs, b.afds[i].lhs);
    EXPECT_EQ(a.afds[i].rhs, b.afds[i].rhs);
    EXPECT_DOUBLE_EQ(a.afds[i].error, b.afds[i].error);
  }
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].attrs, b.keys[i].attrs);
    EXPECT_DOUBLE_EQ(a.keys[i].error, b.keys[i].error);
    EXPECT_EQ(a.keys[i].minimal, b.keys[i].minimal);
  }
}

TEST_F(PersistTest, RoundTripsOrdering) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ordering.relaxation_order(),
            knowledge_->ordering.relaxation_order());
  EXPECT_EQ(loaded->ordering.best_key().attrs,
            knowledge_->ordering.best_key().attrs);
  for (size_t a = 0; a < db_->schema().NumAttributes(); ++a) {
    EXPECT_DOUBLE_EQ(loaded->ordering.Wimp(a), knowledge_->ordering.Wimp(a));
    EXPECT_DOUBLE_EQ(loaded->ordering.WtDepends(a),
                     knowledge_->ordering.WtDepends(a));
  }
}

TEST_F(PersistTest, RoundTripsSimilarityModel) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vsim.NumStoredPairs(), knowledge_->vsim.NumStoredPairs());
  for (size_t attr : db_->schema().CategoricalIndices()) {
    auto values = knowledge_->vsim.MinedValues(attr);
    ASSERT_EQ(loaded->vsim.MinedValues(attr).size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = i + 1; j < values.size() && j < i + 5; ++j) {
        EXPECT_DOUBLE_EQ(loaded->vsim.VSim(attr, values[i], values[j]),
                         knowledge_->vsim.VSim(attr, values[i], values[j]));
      }
    }
  }
}

TEST_F(PersistTest, RoundTripsSample) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sample.tuples(), knowledge_->sample.tuples());
}

TEST_F(PersistTest, SampleCanBeOmitted) {
  SaveOptions opts;
  opts.include_sample = false;
  ASSERT_TRUE(
      SaveKnowledge(*knowledge_, db_->schema(), dir_.string(), opts).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->sample.NumTuples(), 0u);
}

TEST_F(PersistTest, LoadedKnowledgeAnswersIdentically) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto loaded = LoadKnowledge(db_->schema(), dir_.string());
  ASSERT_TRUE(loaded.ok());

  AimqEngine original(db_.get(), std::move(*knowledge_), options_);
  AimqEngine restored(db_.get(), loaded.TakeValue(), options_);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Civic"));
  q.Bind("Price", Value::Num(8000));
  auto a = original.Answer(q);
  auto b = restored.Answer(q);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].tuple, (*b)[i].tuple);
    EXPECT_DOUBLE_EQ((*a)[i].similarity, (*b)[i].similarity);
  }
}

TEST_F(PersistTest, SchemaMismatchRejected) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  auto other = Schema::Make({{"A", AttrType::kCategorical},
                             {"B", AttrType::kNumeric}});
  EXPECT_FALSE(LoadKnowledge(*other, dir_.string()).ok());
}

TEST_F(PersistTest, LoadFromMissingDirectoryErrors) {
  EXPECT_FALSE(LoadKnowledge(db_->schema(), "/nonexistent/aimq").ok());
}

TEST_F(PersistTest, CorruptedFileSurfacesError) {
  ASSERT_TRUE(SaveKnowledge(*knowledge_, db_->schema(), dir_.string()).ok());
  // Truncate dependencies.csv mid-row.
  ASSERT_TRUE(CsvWriteFile((dir_ / "dependencies.csv").string(),
                           {{"kind", "lhs_or_attrs", "rhs", "error",
                             "minimal"},
                            {"afd", "Make"}})
                  .ok());
  EXPECT_FALSE(LoadKnowledge(db_->schema(), dir_.string()).ok());
}

}  // namespace
}  // namespace aimq
