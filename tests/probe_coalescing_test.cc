// Cross-query probe coalescing: N concurrent sessions issuing the same
// probe must cost exactly one source scan — the first arrival leads, the
// rest park on its flight and are handed the leader's answer. Followers
// account as cache hits (and `coalesced`), and errors propagate to every
// waiter without being cached.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/cardb.h"
#include "query/predicate.h"
#include "webdb/probe_cache.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

// A source whose probes block on a gate until released, so a test can hold
// the coalescing leader mid-scan while followers pile up. Optionally fails
// every probe with an injected error.
class GatedDb : public WebDatabase {
 public:
  GatedDb(std::string name, Relation data, bool fail = false)
      : WebDatabase(std::move(name), std::move(data)), fail_(fail) {}

  Result<std::vector<uint32_t>> ExecuteRows(
      const SelectionQuery& query) const override {
    ++calls_;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    }
    if (fail_) return Status::Unavailable("injected source failure");
    return WebDatabase::ExecuteRows(query);
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  int calls() const { return calls_.load(); }

 private:
  const bool fail_;
  mutable std::atomic<int> calls_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool released_ = false;  // guarded by mu_
};

Relation SmallCarDb() {
  CarDbSpec spec;
  spec.num_tuples = 200;
  spec.seed = 17;
  return CarDbGenerator(spec).Generate();
}

SelectionQuery ToyotaQuery() {
  return SelectionQuery({Predicate::Eq("Make", Value::Cat("Toyota"))});
}

// Spins until \p done() holds, failing the test (and returning false) after
// a generous timeout so a coalescing bug cannot hang the suite.
bool WaitFor(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ProbeCoalescingTest, ConcurrentIdenticalProbesCostOneScan) {
  GatedDb db("CarDB", SmallCarDb());
  ProbeCache cache(64);
  cache.EnableCoalescing(true);
  ASSERT_TRUE(cache.coalescing_enabled());

  constexpr size_t kSessions = 5;
  std::vector<Result<std::vector<uint32_t>>> results(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> sessions;
  for (size_t i = 0; i < kSessions; ++i) {
    sessions.emplace_back([&, i] {
      results[i] = cache.ExecuteRows(db, ToyotaQuery());
    });
  }

  // Leader inside the gated scan, every follower parked on its flight.
  ASSERT_TRUE(WaitFor([&] { return db.calls() == 1; }));
  ASSERT_TRUE(
      WaitFor([&] { return cache.InFlightWaiters() == kSessions - 1; }));
  db.Release();
  for (std::thread& t : sessions) t.join();

  // One physical probe answered all five sessions, identically.
  EXPECT_EQ(db.calls(), 1);
  const auto expected = db.WebDatabase::ExecuteRows(ToyotaQuery());
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(expected->empty());
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(results[i].ok()) << "session " << i;
    EXPECT_EQ(*results[i], *expected) << "session " << i;
  }

  const ProbeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kSessions);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kSessions - 1);
  EXPECT_EQ(stats.coalesced, kSessions - 1);

  // The landed answer is resident: the next probe is a plain cache hit and
  // coalescing accounting does not move.
  bool hit = false;
  auto again = cache.ExecuteRows(db, ToyotaQuery(), &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(db.calls(), 1);
  EXPECT_EQ(cache.stats().coalesced, kSessions - 1);
}

TEST(ProbeCoalescingTest, LeaderErrorReachesEveryFollowerAndIsNotCached) {
  GatedDb db("CarDB", SmallCarDb(), /*fail=*/true);
  ProbeCache cache(64);
  cache.EnableCoalescing(true);

  constexpr size_t kSessions = 4;
  std::vector<Result<std::vector<uint32_t>>> results(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> sessions;
  for (size_t i = 0; i < kSessions; ++i) {
    sessions.emplace_back([&, i] {
      results[i] = cache.ExecuteRows(db, ToyotaQuery());
    });
  }
  ASSERT_TRUE(WaitFor([&] { return db.calls() == 1; }));
  ASSERT_TRUE(
      WaitFor([&] { return cache.InFlightWaiters() == kSessions - 1; }));
  db.Release();
  for (std::thread& t : sessions) t.join();

  EXPECT_EQ(db.calls(), 1);
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_FALSE(results[i].ok()) << "session " << i;
    EXPECT_EQ(results[i].status().code(), StatusCode::kUnavailable);
  }
  // Errors never land in the cache: the key is still absent.
  EXPECT_FALSE(cache.Contains(db, ToyotaQuery()));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProbeCoalescingTest, FollowersParkedAcrossVersionSwapGetLeaderAnswer) {
  // Regression test for live ingest: a publish ages out superseded cache
  // entries (EvictVersionsBelow) while probes may be mid-flight. Followers
  // parked on an old-version leader must still be handed the leader's
  // old-version answer — the swap invalidates resident entries, never
  // in-flight probes.
  GatedDb db("CarDB", SmallCarDb());
  ProbeCache cache(64);
  cache.EnableCoalescing(true);

  constexpr size_t kSessions = 4;
  std::vector<Result<std::vector<uint32_t>>> results(
      kSessions, Status::Internal("not run"));
  std::vector<std::thread> sessions;
  for (size_t i = 0; i < kSessions; ++i) {
    sessions.emplace_back([&, i] {
      results[i] = cache.ExecuteRows(db, ToyotaQuery());
    });
  }
  ASSERT_TRUE(WaitFor([&] { return db.calls() == 1; }));
  ASSERT_TRUE(
      WaitFor([&] { return cache.InFlightWaiters() == kSessions - 1; }));

  // A snapshot publish lands while the leader is mid-scan and the followers
  // are parked: every resident entry below the new version is aged out.
  // (db is at snapshot version 0, so any resident entry would go.)
  cache.EvictVersionsBelow(1);

  db.Release();
  for (std::thread& t : sessions) t.join();

  // One physical probe; every parked follower observes the leader's
  // old-version answer, bit-identical to probing version 0 directly.
  EXPECT_EQ(db.calls(), 1);
  const auto expected = db.WebDatabase::ExecuteRows(ToyotaQuery());
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(results[i].ok()) << "session " << i;
    EXPECT_EQ(*results[i], *expected) << "session " << i;
  }
  const ProbeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.coalesced, kSessions - 1);

  // The answer that landed after the swap is an old-version entry; the next
  // aging pass reclaims it.
  EXPECT_EQ(cache.EvictVersionsBelow(1), 1u);
  EXPECT_FALSE(cache.Contains(db, ToyotaQuery()));
}

TEST(ProbeCoalescingTest, DisabledCoalescingNeverParksSessions) {
  GatedDb db("CarDB", SmallCarDb());
  db.Release();  // no gating needed; assert the steady-state accounting
  ProbeCache cache(64);
  ASSERT_FALSE(cache.coalescing_enabled());
  auto first = cache.ExecuteRows(db, ToyotaQuery());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.InFlightWaiters(), 0u);
  EXPECT_EQ(cache.stats().coalesced, 0u);
}

}  // namespace
}  // namespace aimq
