#include "core/feedback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "afd/afd.h"
#include "ordering/attribute_ordering.h"
#include "similarity/value_similarity.h"

namespace aimq {
namespace {

Schema TwoAttr() {
  return Schema::Make({{"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

// Fixture with an empty similarity model: categorical AttributeSim is 1 on
// equality, 0 otherwise — convenient for controlled feedback scenarios.
class FeedbackTest : public ::testing::Test {
 protected:
  FeedbackTest() : schema_(TwoAttr()) {
    MinedDependencies deps;
    deps.num_attributes = 2;
    deps.keys.push_back(AKey{AttrBit(0) | AttrBit(1), 0.0, true});
    ordering_ = AttributeOrdering::Derive(schema_, deps).TakeValue();
    sim_ = std::make_unique<SimilarityFunction>(&schema_, &ordering_, &vsim_);
  }

  Tuple T(const char* model, double price) {
    return Tuple({Value::Cat(model), Value::Num(price)});
  }

  Schema schema_;
  AttributeOrdering ordering_;
  ValueSimilarityModel vsim_;
  std::unique_ptr<SimilarityFunction> sim_;
};

TEST_F(FeedbackTest, NoViolationsLeaveWeightsUnchanged) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  // User agrees with the system order.
  std::vector<JudgedAnswer> judged{{T("Camry", 10000), 1},
                                   {T("Camry", 12000), 2}};
  auto updated = feedback.Round(*sim_, schema_, q, judged, {0.5, 0.5});
  ASSERT_TRUE(updated.ok());
  EXPECT_DOUBLE_EQ((*updated)[0], 0.5);
  EXPECT_DOUBLE_EQ((*updated)[1], 0.5);
}

TEST_F(FeedbackTest, ViolationShiftsWeightTowardAgreeingAttribute) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  // System put the model-match first; the user preferred the price-match.
  // Price similarity argues for the user's choice, so Price gains weight.
  std::vector<JudgedAnswer> judged{{T("Camry", 30000), 2},
                                   {T("Accord", 10000), 1}};
  auto updated = feedback.Round(*sim_, schema_, q, judged, {0.5, 0.5});
  ASSERT_TRUE(updated.ok());
  EXPECT_GT((*updated)[1], 0.5);
  EXPECT_LT((*updated)[0], 0.5);
  EXPECT_NEAR((*updated)[0] + (*updated)[1], 1.0, 1e-12);
}

TEST_F(FeedbackTest, IrrelevantAnswerCountsAsWorstRank) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  // First answer judged irrelevant (rank 0): the user prefers the second,
  // which matches on price.
  std::vector<JudgedAnswer> judged{{T("Camry", 30000), 0},
                                   {T("Accord", 10000), 1}};
  EXPECT_EQ(RelevanceFeedback::CountViolations(judged), 1u);
  auto updated = feedback.Round(*sim_, schema_, q, judged, {0.5, 0.5});
  ASSERT_TRUE(updated.ok());
  EXPECT_GT((*updated)[1], 0.5);
}

TEST_F(FeedbackTest, RepeatedRoundsConverge) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  std::vector<JudgedAnswer> judged{{T("Camry", 30000), 2},
                                   {T("Accord", 10000), 1}};
  std::vector<double> w{0.5, 0.5};
  for (int round = 0; round < 30; ++round) {
    auto updated = feedback.Round(*sim_, schema_, q, judged, w);
    ASSERT_TRUE(updated.ok());
    w = updated.TakeValue();
  }
  // Price dominates but Model keeps its floor.
  EXPECT_GT(w[1], 0.9);
  EXPECT_GT(w[0], 0.0);
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
}

TEST_F(FeedbackTest, WeightsStayNormalizedAndPositive) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  std::vector<JudgedAnswer> judged{{T("Viper", 30000), 3},
                                   {T("Accord", 10000), 1},
                                   {T("Camry", 60000), 2}};
  auto updated = feedback.Round(*sim_, schema_, q, judged, {0.99, 0.01});
  ASSERT_TRUE(updated.ok());
  double total = std::accumulate(updated->begin(), updated->end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (double w : *updated) EXPECT_GT(w, 0.0);
}

TEST_F(FeedbackTest, CountViolations) {
  // System order: a, b, c. User: c best, a second, b irrelevant.
  std::vector<JudgedAnswer> judged{{T("a", 1), 2}, {T("b", 1), 0},
                                   {T("c", 1), 1}};
  // Violations: (a,c): user prefers c → 1; (b,c): user prefers c → 1;
  // (a,b): user prefers a (b irrelevant) → not a violation.
  EXPECT_EQ(RelevanceFeedback::CountViolations(judged), 2u);
  EXPECT_EQ(RelevanceFeedback::CountViolations({}), 0u);
}

TEST_F(FeedbackTest, InputValidation) {
  RelevanceFeedback feedback;
  Tuple q = T("Camry", 10000);
  std::vector<JudgedAnswer> judged{{T("Camry", 10000), 1}};
  EXPECT_FALSE(feedback.Round(*sim_, schema_, q, judged, {0.5}).ok());
  EXPECT_FALSE(
      feedback.Round(*sim_, schema_, Tuple({Value::Num(1)}), judged,
                     {0.5, 0.5})
          .ok());
  std::vector<JudgedAnswer> bad{{T("Camry", 10000), -1}};
  EXPECT_FALSE(feedback.Round(*sim_, schema_, q, bad, {0.5, 0.5}).ok());
  std::vector<JudgedAnswer> arity{{Tuple({Value::Cat("x")}), 1}};
  EXPECT_FALSE(feedback.Round(*sim_, schema_, q, arity, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace aimq
