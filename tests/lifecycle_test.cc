// Full product-lifecycle integration test: generate data → probe under a
// budget → mine → persist → restart (load) → answer parsed text queries →
// log the workload → collect feedback → persist again → verify the tuned
// model survives the round trip. Exercises every public subsystem together.

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/engine.h"
#include "core/persist.h"
#include "core/report.h"
#include "datagen/cardb.h"
#include "eval/simulated_user.h"
#include "query/parser.h"
#include "workload/query_log.h"

namespace aimq {
namespace {

TEST(LifecycleTest, EndToEndMinePersistQueryFeedbackPersist) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("aimq_lifecycle_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  // --- Day 0: stand up the source and learn under a probe budget. ---------
  CarDbSpec spec;
  spec.num_tuples = 6000;
  spec.seed = 55;
  CarDbGenerator generator(spec);
  WebDatabase db("CarDB", generator.Generate());

  AimqOptions options;
  options.collector.sample_size = 2500;
  options.collector.spanning_attribute = "Make";
  options.collector.max_queries = 10;  // rate-limited source
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
  ASSERT_LE(db.stats().queries_issued, 10u);

  // The mining report renders.
  EXPECT_FALSE(RenderMiningReport(*knowledge, db.schema()).empty());

  ASSERT_TRUE(SaveKnowledge(*knowledge, db.schema(), dir.string()).ok());

  // --- Day 1: restart, load, serve parsed queries, log them. --------------
  auto loaded = LoadKnowledge(db.schema(), dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  AimqEngine engine(&db, loaded.TakeValue(), options);

  QueryParser parser(&db.schema());
  QueryLog log(&db.schema());
  const char* raw_queries[] = {
      "CarDB(Model like Camry, Price like 9000)",
      "CarDB(Make like Kia)",
      "CarDB(Model like F-150, Mileage like 90000)",
  };
  std::vector<RankedAnswer> last_answers;
  ImpreciseQuery last_query;
  for (const char* raw : raw_queries) {
    auto q = parser.ParseImprecise(raw);
    ASSERT_TRUE(q.ok()) << raw;
    ASSERT_TRUE(log.Record(*q).ok());
    auto answers = engine.Answer(*q);
    ASSERT_TRUE(answers.ok()) << raw << ": " << answers.status().ToString();
    ASSERT_FALSE(answers->empty()) << raw;
    // Every answer must be explainable and its explanation consistent.
    for (const RankedAnswer& a : *answers) {
      auto explanation = engine.Explain(*q, a.tuple);
      ASSERT_TRUE(explanation.ok());
      EXPECT_NEAR(explanation->total, a.similarity, 1e-9);
    }
    last_answers = *answers;
    last_query = *q;
  }
  EXPECT_EQ(log.NumQueries(), 3u);
  ASSERT_TRUE(log.Save((dir / "workload.csv").string()).ok());

  // --- Day 2: a user re-ranks one answer list; tune and persist. ----------
  SimulatedUserOptions uopts;
  uopts.noise_stddev = 0.0;
  SimulatedUser judge(
      [&generator](const Tuple& a, const Tuple& b) {
        return generator.TupleSimilarity(a, b);
      },
      uopts);
  // Judge against the query's base tuple proxy: use the top answer as the
  // user's reference point.
  std::vector<int> user_ranks =
      judge.RankAnswers(last_answers[0].tuple, last_answers);
  std::vector<JudgedAnswer> judged;
  for (size_t i = 0; i < last_answers.size(); ++i) {
    judged.push_back(JudgedAnswer{last_answers[i].tuple, user_ranks[i]});
  }
  RelevanceFeedback feedback;
  auto tuned = engine.ApplyFeedback(feedback, last_answers[0].tuple, judged);
  ASSERT_TRUE(tuned.ok());

  ASSERT_TRUE(
      SaveKnowledge(engine.knowledge(), db.schema(), dir.string()).ok());

  // --- Day 3: restart again; the tuned weights survived. ------------------
  auto reloaded = LoadKnowledge(db.schema(), dir.string());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->WimpVector(), *tuned);
  auto reloaded_log = QueryLog::Load(&db.schema(),
                                     (dir / "workload.csv").string());
  ASSERT_TRUE(reloaded_log.ok());
  EXPECT_EQ(reloaded_log->NumQueries(), 3u);

  // And the reloaded engine still answers.
  AimqEngine engine2(&db, reloaded.TakeValue(), options);
  auto again = engine2.Answer(last_query);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->empty());

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace aimq
