// Live ingest through the serving layer: AimqService::Ingest /
// RefreshKnowledge, the {"op":"ingest"} and {"op":"refresh_knowledge"} wire
// ops over a real socket, the aimq_snapshot_* / aimq_ingest_* metric
// families on /metrics, the background row-trigger refresher, and queries
// running concurrently with publishes without a single failure.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "datagen/cardb.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/socket.h"

namespace aimq {
namespace {

// Spins until \p done() holds; false after a generous deadline so a stuck
// background refresher fails the test instead of hanging the suite.
bool WaitFor(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// A CarDB row as the wire ingest op takes it.
std::string WireRow(const std::string& make, const std::string& model,
                    double price) {
  return R"js({"Make":")js" + make + R"js(","Model":")js" + model +
         R"js(","Year":"2004","Price":)js" + std::to_string(price) +
         R"js(,"Mileage":52000,"Location":"Tempe","Color":"Blue"})js";
}

Tuple CarRow(const std::string& make, const std::string& model) {
  return Tuple({Value::Cat(make), Value::Cat(model), Value::Cat("2004"),
                Value::Num(18000), Value::Num(52000), Value::Cat("Tempe"),
                Value::Cat("Blue")});
}

class LiveServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 400;
    spec.seed = 11;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    options_ = new AimqOptions();
    options_->collector.sample_size = 200;
    options_->tsim = 0.4;
    options_->top_k = 5;
    options_->num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
  }

  static ImpreciseQuery CamryQuery() {
    ImpreciseQuery q;
    q.Bind("Model", Value::Cat("Camry"));
    return q;
  }

  // Opens a client connection to \p server; callers close the fd.
  static int Connect(const AimqServer& server) {
    auto fd = TcpConnect("localhost", server.port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    return fd.ok() ? *fd : -1;
  }

  static Json RoundTrip(int fd, LineReader* reader, const std::string& line) {
    EXPECT_TRUE(SendAll(fd, line + "\n").ok());
    auto response = reader->ReadLine();
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->has_value());
    auto json = Json::Parse(**response);
    EXPECT_TRUE(json.ok()) << json.status().ToString();
    return json.ok() ? json.TakeValue() : Json::Null();
  }

  static std::vector<std::string> HttpGet(int port, const std::string& path) {
    std::vector<std::string> lines;
    auto fd = TcpConnect("localhost", port);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) return lines;
    EXPECT_TRUE(
        SendAll(*fd, "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n").ok());
    LineReader reader(*fd);
    for (;;) {
      auto line = reader.ReadLine();
      if (!line.ok() || !line->has_value()) break;
      lines.push_back(**line);
    }
    CloseFd(*fd);
    return lines;
  }

  // First sample value of metric \p name in the Prometheus text, or -1.
  static double MetricValue(const std::vector<std::string>& lines,
                            const std::string& name) {
    const std::string prefix = name + " ";
    for (const std::string& line : lines) {
      if (line.compare(0, prefix.size(), prefix) == 0) {
        return std::stod(line.substr(prefix.size()));
      }
    }
    return -1.0;
  }

  static bool HasLinePrefix(const std::vector<std::string>& lines,
                            const std::string& prefix) {
    for (const std::string& line : lines) {
      if (line.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
  }

  static WebDatabase* db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* LiveServiceTest::db_ = nullptr;
AimqOptions* LiveServiceTest::options_ = nullptr;
MinedKnowledge* LiveServiceTest::knowledge_ = nullptr;

TEST_F(LiveServiceTest, IngestPublishesAndServesTheNewRows) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());

  const auto v0 = service.CurrentVersion();
  EXPECT_EQ(v0->snapshot_version, 0u);
  const size_t base_rows = v0->num_rows;

  auto published = service.Ingest(
      {CarRow("Toyota", "Camry"), CarRow("Toyota", "Camry")});
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(*published, 1u);

  const auto v1 = service.CurrentVersion();
  EXPECT_EQ(v1->snapshot_version, 1u);
  EXPECT_EQ(v1->num_rows, base_rows + 2);
  // The captured old version is untouched by the publish.
  EXPECT_EQ(v0->num_rows, base_rows);

  // New rows are served: exact Camry matches grew by the ingested pair.
  auto before = v0->engine->Answer(CamryQuery());
  auto after = v1->engine->Answer(CamryQuery());
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  size_t exact_before = 0, exact_after = 0;
  for (const auto& a : *before) exact_before += a.similarity == 1.0;
  for (const auto& a : *after) exact_after += a.similarity == 1.0;
  EXPECT_GE(exact_after, exact_before);

  const LiveIngestStats stats = service.LiveStats();
  EXPECT_EQ(stats.snapshot_version, 1u);
  EXPECT_EQ(stats.ingested_rows_total, 2u);
  EXPECT_EQ(stats.publishes_total, 1u);
  EXPECT_EQ(stats.knowledge_staleness_rows, 2u);
  service.Stop();
}

TEST_F(LiveServiceTest, RefreshKnowledgePublishesANewEdition) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Ingest({CarRow("Honda", "Civic")}).ok());

  auto refreshed = service.RefreshKnowledge();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(*refreshed, 2u);
  EXPECT_EQ(service.CurrentVersion()->knowledge_version, 2u);
  EXPECT_EQ(service.LiveStats().knowledge_staleness_rows, 0u);
  EXPECT_EQ(service.LiveStats().refreshes_total, 1u);
  // The refreshed edition answers.
  EXPECT_TRUE(service.Execute(CamryQuery()).ok());
  service.Stop();
}

TEST_F(LiveServiceTest, WireIngestAndRefreshOps) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  AimqServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  const int fd = Connect(server);
  ASSERT_GE(fd, 0);
  LineReader reader(fd);

  // Two rows in, version and accepted count out.
  Json r = RoundTrip(fd, &reader,
                     R"js({"op":"ingest","id":7,"rows":[)js" +
                         WireRow("Toyota", "Camry", 17000) + "," +
                         WireRow("Honda", "Accord", 15000) + "]}");
  ASSERT_TRUE(r.GetBool("ok").ok() && *r.GetBool("ok")) << r.Dump();
  EXPECT_DOUBLE_EQ(r.Find("id")->AsNum(), 7.0);
  EXPECT_DOUBLE_EQ(r.Find("accepted")->AsNum(), 2.0);
  EXPECT_DOUBLE_EQ(r.Find("snapshot_version")->AsNum(), 1.0);

  // The ingested rows are served over the wire immediately.
  r = RoundTrip(fd, &reader,
                R"js({"op":"query","q":"Q(Model like 'Accord')"})js");
  ASSERT_TRUE(r.GetBool("ok").ok() && *r.GetBool("ok")) << r.Dump();
  ASSERT_NE(r.Find("answers"), nullptr);
  EXPECT_GT(r.Find("answers")->AsArr().size(), 0u);

  // Type mismatch answers in-band and publishes nothing.
  r = RoundTrip(
      fd, &reader,
      R"js({"op":"ingest","rows":[{"Make":"Kia","Price":"not a number"}]})js");
  ASSERT_TRUE(r.GetBool("ok").ok());
  EXPECT_FALSE(*r.GetBool("ok"));
  // Unknown attribute is rejected, not silently dropped.
  r = RoundTrip(fd, &reader,
                R"js({"op":"ingest","rows":[{"Maek":"Kia"}]})js");
  ASSERT_TRUE(r.GetBool("ok").ok());
  EXPECT_FALSE(*r.GetBool("ok"));
  EXPECT_EQ(service.LiveStats().snapshot_version, 1u);

  // Knowledge refresh over the wire reports both versions.
  r = RoundTrip(fd, &reader, R"js({"op":"refresh_knowledge","id":8})js");
  ASSERT_TRUE(r.GetBool("ok").ok() && *r.GetBool("ok")) << r.Dump();
  EXPECT_DOUBLE_EQ(r.Find("id")->AsNum(), 8.0);
  EXPECT_DOUBLE_EQ(r.Find("knowledge_version")->AsNum(), 2.0);
  EXPECT_DOUBLE_EQ(r.Find("snapshot_version")->AsNum(), 1.0);

  // The connection survived everything.
  r = RoundTrip(fd, &reader, R"js({"op":"ping"})js");
  EXPECT_EQ(r.Dump(), R"js({"ok":true,"pong":true})js");
  CloseFd(fd);
  server.Stop();
  service.Stop();
}

TEST_F(LiveServiceTest, PrometheusExportsLiveIngestFamilies) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  AimqServer server(&service, /*port=*/0);
  ASSERT_TRUE(server.Start().ok());

  auto baseline = HttpGet(server.port(), "/metrics");
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(MetricValue(baseline, "aimq_snapshot_version"), 0.0);

  ASSERT_TRUE(service.Ingest({CarRow("Toyota", "Camry"),
                              CarRow("Toyota", "Corolla"),
                              CarRow("Honda", "Civic")})
                  .ok());
  ASSERT_TRUE(service.RefreshKnowledge().ok());

  const auto lines = HttpGet(server.port(), "/metrics");
  ASSERT_FALSE(lines.empty());
  for (const char* family :
       {"# TYPE aimq_snapshot_version gauge",
        "# TYPE aimq_knowledge_version gauge",
        "# TYPE aimq_knowledge_staleness_rows gauge",
        "# TYPE aimq_ingest_rows_total counter",
        "# TYPE aimq_snapshot_publishes_total counter",
        "# TYPE aimq_knowledge_refreshes_total counter",
        "# TYPE aimq_snapshot_publish_seconds histogram",
        "# TYPE aimq_probe_cache_version_evictions_total counter"}) {
    EXPECT_TRUE(HasLinePrefix(lines, family)) << "missing: " << family;
  }
  EXPECT_EQ(MetricValue(lines, "aimq_snapshot_version"), 1.0);
  EXPECT_EQ(MetricValue(lines, "aimq_knowledge_version"), 2.0);
  EXPECT_EQ(MetricValue(lines, "aimq_ingest_rows_total"), 3.0);
  EXPECT_EQ(MetricValue(lines, "aimq_knowledge_staleness_rows"), 0.0);
  EXPECT_EQ(MetricValue(lines, "aimq_snapshot_publishes_total"), 1.0);
  EXPECT_TRUE(HasLinePrefix(lines, "aimq_snapshot_publish_seconds_bucket"));

  server.Stop();
  service.Stop();
}

TEST_F(LiveServiceTest, RowTriggerRefreshesKnowledgeInBackground) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.ingest_trigger_rows = 1;  // any published staleness re-mines
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.LiveStats().knowledge_version, 1u);

  ASSERT_TRUE(service.Ingest({CarRow("Toyota", "Camry")}).ok());
  EXPECT_TRUE(WaitFor([&] { return service.LiveStats().refreshes_total >= 1; }))
      << "background refresher never fired";
  EXPECT_GE(service.LiveStats().knowledge_version, 2u);
  EXPECT_EQ(service.LiveStats().knowledge_staleness_rows, 0u);
  service.Stop();
}

TEST_F(LiveServiceTest, QueriesNeverFailAcrossConcurrentPublishes) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.queue_depth = 64;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread querier([&] {
    while (!done.load()) {
      auto response = service.Execute(CamryQuery());
      // Queue-full rejections are admission control, not serving failures —
      // with depth 64 and one querier they cannot happen here.
      if (!response.ok() || response->answers.empty()) ++failures;
    }
  });
  for (int round = 0; round < 8; ++round) {
    ASSERT_TRUE(service.Ingest({CarRow("Toyota", "Camry")}).ok());
    if (round % 3 == 2) ASSERT_TRUE(service.RefreshKnowledge().ok());
  }
  done.store(true);
  querier.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.LiveStats().snapshot_version, 8u);
  EXPECT_EQ(service.LiveStats().ingested_rows_total, 8u);
  service.Stop();
}

}  // namespace
}  // namespace aimq
