// Prometheus text-exposition tests: family presence, zero-state sanity (no
// NaN leaks), cumulative bucket semantics, and line grammar basics.

#include "service/prometheus.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "service/metrics.h"
#include "webdb/probe_cache.h"

namespace aimq {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

bool HasLinePrefix(const std::string& text, const std::string& prefix) {
  for (const std::string& line : Lines(text)) {
    if (line.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

// Extracts `<name> <value>` sample values for an exact metric name.
std::vector<double> SampleValues(const std::string& text,
                                 const std::string& name) {
  std::vector<double> out;
  for (const std::string& line : Lines(text)) {
    if (line.compare(0, name.size(), name) == 0 &&
        line.size() > name.size() && line[name.size()] == ' ') {
      out.push_back(std::stod(line.substr(name.size() + 1)));
    }
  }
  return out;
}

TEST(PrometheusTest, ZeroStateEmitsAllFamiliesWithoutNaN) {
  ServiceMetrics metrics;
  const std::string text = PrometheusMetricsText(metrics, nullptr);
  for (const char* family :
       {"aimq_requests_accepted_total", "aimq_requests_rejected_total",
        "aimq_requests_completed_total", "aimq_requests_failed_total",
        "aimq_requests_truncated_total", "aimq_requests_in_flight",
        "aimq_request_rejection_rate", "aimq_request_latency_seconds",
        "aimq_queue_wait_seconds", "aimq_phase_base_set_seconds",
        "aimq_phase_relax_seconds", "aimq_phase_rank_seconds"}) {
    EXPECT_TRUE(HasLinePrefix(text, std::string("# TYPE ") + family))
        << "missing family " << family;
  }
  // No probe-cache stats given: those families must be absent.
  EXPECT_FALSE(HasLinePrefix(text, "# TYPE aimq_probe_cache"));
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrometheusTest, CountersReflectMetricsState) {
  ServiceMetrics metrics;
  metrics.OnAccepted();
  metrics.OnAccepted();
  metrics.OnRejected();
  metrics.OnCompleted(0.001, 0.010);
  const std::string text = PrometheusMetricsText(metrics, nullptr);
  EXPECT_EQ(SampleValues(text, "aimq_requests_accepted_total"),
            std::vector<double>{2.0});
  EXPECT_EQ(SampleValues(text, "aimq_requests_rejected_total"),
            std::vector<double>{1.0});
  EXPECT_EQ(SampleValues(text, "aimq_requests_completed_total"),
            std::vector<double>{1.0});
  const auto rejection = SampleValues(text, "aimq_request_rejection_rate");
  ASSERT_EQ(rejection.size(), 1u);
  EXPECT_NEAR(rejection[0], 1.0 / 3.0, 1e-9);
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndEndAtCount) {
  ServiceMetrics metrics;
  metrics.OnCompleted(0.0001, 0.001);
  metrics.OnCompleted(0.0001, 0.010);
  metrics.OnCompleted(0.0001, 0.100);
  const std::string text = PrometheusMetricsText(metrics, nullptr);
  // Bucket values never decrease as le grows.
  std::vector<double> buckets;
  for (const std::string& line : Lines(text)) {
    const std::string prefix = "aimq_request_latency_seconds_bucket{le=";
    if (line.compare(0, prefix.size(), prefix) == 0) {
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos);
      buckets.push_back(std::stod(line.substr(space + 1)));
    }
  }
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]) << "bucket " << i << " decreased";
  }
  // The +Inf bucket and _count agree with the number of observations.
  EXPECT_DOUBLE_EQ(buckets.back(), 3.0);
  EXPECT_EQ(SampleValues(text, "aimq_request_latency_seconds_count"),
            std::vector<double>{3.0});
  const auto sum = SampleValues(text, "aimq_request_latency_seconds_sum");
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_NEAR(sum[0], 0.111, 0.111 * 0.30);  // geometric buckets quantize
}

TEST(PrometheusTest, ProbeCacheFamiliesWhenStatsGiven) {
  ServiceMetrics metrics;
  ProbeCacheStats stats;
  stats.lookups = 10;
  stats.hits = 7;
  stats.misses = 3;
  stats.evictions = 1;
  const std::string text = PrometheusMetricsText(metrics, &stats);
  EXPECT_EQ(SampleValues(text, "aimq_probe_cache_lookups_total"),
            std::vector<double>{10.0});
  EXPECT_EQ(SampleValues(text, "aimq_probe_cache_hits_total"),
            std::vector<double>{7.0});
  EXPECT_EQ(SampleValues(text, "aimq_probe_cache_misses_total"),
            std::vector<double>{3.0});
  EXPECT_EQ(SampleValues(text, "aimq_probe_cache_evictions_total"),
            std::vector<double>{1.0});
  const auto rate = SampleValues(text, "aimq_probe_cache_hit_rate");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_NEAR(rate[0], 0.7, 1e-9);
}

TEST(PrometheusTest, ZeroLookupCacheEmitsZeroHitRate) {
  ServiceMetrics metrics;
  ProbeCacheStats stats;  // all zero
  const std::string text = PrometheusMetricsText(metrics, &stats);
  EXPECT_EQ(SampleValues(text, "aimq_probe_cache_hit_rate"),
            std::vector<double>{0.0});
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(PrometheusTest, EveryFamilyHasHelpAndTypeBeforeSamples) {
  ServiceMetrics metrics;
  metrics.OnAccepted();
  const std::string text = PrometheusMetricsText(metrics, nullptr);
  // Grammar smoke: every non-comment line is `<name...> <value>`; every
  // family introduces itself with # HELP then # TYPE.
  std::string last_comment;
  for (const std::string& line : Lines(text)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.compare(0, 7, "# HELP ") == 0 ||
                  line.compare(0, 7, "# TYPE ") == 0)
          << line;
      if (line.compare(0, 7, "# TYPE ") == 0) {
        EXPECT_EQ(last_comment.compare(0, 7, "# HELP "), 0)
            << "# TYPE without preceding # HELP: " << line;
      }
      last_comment = line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST(PrometheusTest, TenantLabelValuesAreEscaped) {
  // A tenant whose name carries quotes, backslashes and a newline must come
  // out as one well-formed sample line per the exposition-format escaping
  // rules — not a broken multi-line or mis-quoted label.
  ServiceMetrics metrics;
  metrics.OnTenantAccepted("acme \"prod\"\\eu\nwest");
  metrics.OnTenantCompleted("acme \"prod\"\\eu\nwest");
  const std::string text = PrometheusMetricsText(metrics, nullptr);
  EXPECT_TRUE(HasLinePrefix(
      text,
      "aimq_tenant_accepted_total"
      "{tenant=\"acme \\\"prod\\\"\\\\eu\\nwest\"} 1"))
      << text;
  // Nothing leaked a raw newline mid-sample: every non-comment line still
  // ends in a numeric value.
  for (const std::string& line : Lines(text)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

}  // namespace
}  // namespace aimq
