// End-to-end integration tests: the full AIMQ pipeline (probe → mine →
// order → similarity → answer) against generated CarDB and CensusDB sources,
// plus AIMQ-vs-ROCK comparisons on shared data.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/knowledge.h"
#include "datagen/cardb.h"
#include "datagen/censusdb.h"
#include "eval/metrics.h"
#include "eval/simulated_user.h"
#include "rock/rock_engine.h"

namespace aimq {
namespace {

class CarDbIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 20000;
    spec.seed = 7;
    generator_ = new CarDbGenerator(spec);
    db_ = new WebDatabase("CarDB", generator_->Generate());
    AimqOptions options;
    options.collector.sample_size = 10000;
    options.tsim = 0.5;
    options.top_k = 10;
    auto knowledge = BuildKnowledge(*db_, options, &timings_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    engine_ = new AimqEngine(db_, knowledge.TakeValue(), options);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
    delete generator_;
    engine_ = nullptr;
    db_ = nullptr;
    generator_ = nullptr;
  }

  static CarDbGenerator* generator_;
  static WebDatabase* db_;
  static AimqEngine* engine_;
  static OfflineTimings timings_;
};

CarDbGenerator* CarDbIntegrationTest::generator_ = nullptr;
WebDatabase* CarDbIntegrationTest::db_ = nullptr;
AimqEngine* CarDbIntegrationTest::engine_ = nullptr;
OfflineTimings CarDbIntegrationTest::timings_;

TEST_F(CarDbIntegrationTest, OfflinePhaseReportsTimings) {
  EXPECT_GT(timings_.TotalSeconds(), 0.0);
  EXPECT_GE(timings_.dependency_mining_seconds, 0.0);
  EXPECT_GE(timings_.similarity_estimation_seconds, 0.0);
}

TEST_F(CarDbIntegrationTest, MinesModelToMakeAfd) {
  const MinedDependencies& deps = engine_->knowledge().dependencies;
  bool found = false;
  for (const Afd& afd : deps.afds) {
    if (afd.lhs == AttrBit(CarDbGenerator::kModel) &&
        afd.rhs == CarDbGenerator::kMake) {
      found = true;
      EXPECT_LT(afd.error, 0.01);  // the generator plants Model→Make exactly
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CarDbIntegrationTest, MakeIsMostDependentAttribute) {
  // Paper Figure 3: Make has the highest dependence weight in CarDB.
  const AttributeOrdering& ordering = engine_->knowledge().ordering;
  double make_dep = ordering.WtDepends(CarDbGenerator::kMake);
  for (size_t a = 0; a < 7; ++a) {
    if (a == CarDbGenerator::kMake) continue;
    EXPECT_GE(make_dep, ordering.WtDepends(a)) << "attr " << a;
  }
}

TEST_F(CarDbIntegrationTest, PaperRunningExampleCamryQuery) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_GE(answers->size(), 5u);
  // The top answers must all be sedans in the Camry price band — mostly
  // Camrys, possibly similar models (the paper's Accord scenario).
  size_t camrys = 0;
  for (const RankedAnswer& a : *answers) {
    if (a.tuple.At(CarDbGenerator::kModel).AsCat() == "Camry") ++camrys;
  }
  EXPECT_GE(camrys, answers->size() / 2);
}

TEST_F(CarDbIntegrationTest, LearnedSimilarityAgreesWithOracleOrdering) {
  const ValueSimilarityModel& vsim = engine_->knowledge().vsim;
  // Ford should be closer to Chevrolet than to BMW (paper Figure 5: the
  // Ford-Chevrolet edge is the strongest, the Ford-BMW edge is pruned).
  // These makes have large supports, so the estimate is stable even on this
  // reduced test database; the small-support pairs of Table 3 (Kia) are
  // exercised at full scale by bench/table3_value_similarity.
  double ford_chevy = vsim.VSim(CarDbGenerator::kMake, Value::Cat("Ford"),
                                Value::Cat("Chevrolet"));
  double ford_bmw =
      vsim.VSim(CarDbGenerator::kMake, Value::Cat("Ford"), Value::Cat("BMW"));
  EXPECT_GT(ford_chevy, ford_bmw);
  // Hyundai must rank among Kia's closest makes even at this scale.
  auto top = vsim.TopSimilar(CarDbGenerator::kMake, Value::Cat("Kia"), 5);
  bool hyundai_close = false;
  for (const auto& [value, sim] : top) {
    if (value == Value::Cat("Hyundai")) hyundai_close = true;
  }
  EXPECT_TRUE(hyundai_close);
}

TEST_F(CarDbIntegrationTest, AdjacentYearsMoreSimilarThanDistant) {
  const ValueSimilarityModel& vsim = engine_->knowledge().vsim;
  double y_95_96 = vsim.VSim(CarDbGenerator::kYear, Value::Cat("1995"),
                             Value::Cat("1996"));
  double y_95_05 = vsim.VSim(CarDbGenerator::kYear, Value::Cat("1995"),
                             Value::Cat("2005"));
  EXPECT_GT(y_95_96, y_95_05);
}

TEST_F(CarDbIntegrationTest, SimulatedUserStudyPrefersGuidedOverRandom) {
  const Relation& hidden = db_->hidden_relation_for_testing();
  SimulatedUserOptions uopts;
  uopts.noise_stddev = 0.0;
  SimulatedUser user(
      [&](const Tuple& a, const Tuple& b) {
        return generator_->TupleSimilarity(a, b);
      },
      uopts);
  std::vector<double> guided_mrr, random_mrr;
  for (size_t i = 0; i < 6; ++i) {
    Tuple query_tuple = hidden.tuple(500 + i * 91);
    auto guided = engine_->FindSimilar(query_tuple, 10, 0.4,
                                       RelaxationStrategy::kGuided);
    auto random = engine_->FindSimilar(query_tuple, 10, 0.4,
                                       RelaxationStrategy::kRandom);
    ASSERT_TRUE(guided.ok() && random.ok());
    guided_mrr.push_back(PaperMrr(user.RankAnswers(query_tuple, *guided)));
    random_mrr.push_back(PaperMrr(user.RankAnswers(query_tuple, *random)));
  }
  // Figure 8 shape: guided relaxation at least matches random relaxation.
  EXPECT_GE(Mean(guided_mrr), Mean(random_mrr) - 0.05);
}

TEST(CensusIntegrationTest, ClassAgreementAboveBaseRate) {
  CensusDbSpec spec;
  spec.num_tuples = 6000;
  spec.seed = 12;
  CensusDbGenerator generator(spec);
  CensusDataset data = generator.Generate();
  WebDatabase db("CensusDB", data.relation);

  AimqOptions options;
  options.collector.sample_size = 3000;
  options.tane.max_lhs_size = 2;
  options.tane.max_key_size = 3;
  options.tsim = 0.4;
  options.top_k = 10;
  auto knowledge = BuildKnowledge(db, options);
  ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
  AimqEngine engine(&db, knowledge.TakeValue(), options);

  // Label lookup for answers.
  std::unordered_map<Tuple, int, TupleHash> label_of;
  for (size_t i = 0; i < data.relation.NumTuples(); ++i) {
    label_of.emplace(data.relation.tuple(i), data.labels[i]);
  }

  // Query with a handful of tuples; top-10 answers should agree with the
  // query's class more often than the positive base rate would suggest.
  std::vector<double> accs;
  for (size_t i = 0; i < 8; ++i) {
    size_t row = 100 + i * 301;
    Tuple query_tuple = data.relation.tuple(row);
    auto answers =
        engine.FindSimilar(query_tuple, 10, 0.4, RelaxationStrategy::kGuided);
    ASSERT_TRUE(answers.ok());
    if (answers->empty()) continue;
    std::vector<int> labels;
    for (const RankedAnswer& a : *answers) {
      auto it = label_of.find(a.tuple);
      ASSERT_NE(it, label_of.end());
      labels.push_back(it->second);
    }
    accs.push_back(TopKClassAccuracy(labels, data.labels[row],
                                     labels.size()));
  }
  ASSERT_GE(accs.size(), 4u);
  EXPECT_GT(Mean(accs), 0.5);
}

TEST(AimqVsRockIntegrationTest, BothAnswerTheSameQuery) {
  CarDbSpec spec;
  spec.num_tuples = 4000;
  spec.seed = 31;
  CarDbGenerator generator(spec);
  Relation data = generator.Generate();
  WebDatabase db("CarDB", data);

  AimqOptions aopts;
  aopts.collector.sample_size = 2000;
  auto knowledge = BuildKnowledge(db, aopts);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine aimq_engine(&db, knowledge.TakeValue(), aopts);

  RockOptions ropts;
  ropts.sample_size = 800;
  ropts.num_clusters = 15;
  ropts.theta = 0.5;
  auto rock_engine = RockEngine::Build(data, ropts);
  ASSERT_TRUE(rock_engine.ok()) << rock_engine.status().ToString();

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Accord"));
  auto aimq_answers = aimq_engine.Answer(q);
  auto rock_answers = rock_engine->Answer(q, 10);
  ASSERT_TRUE(aimq_answers.ok()) << aimq_answers.status().ToString();
  ASSERT_TRUE(rock_answers.ok()) << rock_answers.status().ToString();
  EXPECT_FALSE(aimq_answers->empty());
  EXPECT_FALSE(rock_answers->empty());
}

}  // namespace
}  // namespace aimq
