#include "core/engine.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/cardb.h"

namespace aimq {
namespace {

// Shared small CarDB + engine; built once because offline learning, while
// fast, is not free.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 6000;
    spec.seed = 99;
    CarDbGenerator generator(spec);
    db_ = new WebDatabase("CarDB", generator.Generate());
    options_ = new AimqOptions();
    options_->collector.sample_size = 3000;
    options_->tsim = 0.4;
    options_->top_k = 10;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    engine_ = new AimqEngine(db_, knowledge.TakeValue(), *options_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete options_;
    delete db_;
    engine_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
  }

  static WebDatabase* db_;
  static AimqOptions* options_;
  static AimqEngine* engine_;
};

WebDatabase* EngineTest::db_ = nullptr;
AimqOptions* EngineTest::options_ = nullptr;
AimqEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, AnswerReturnsRankedTuples) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_FALSE(answers->empty());
  EXPECT_LE(answers->size(), 10u);
  for (size_t i = 1; i < answers->size(); ++i) {
    EXPECT_GE((*answers)[i - 1].similarity, (*answers)[i].similarity);
  }
  for (const RankedAnswer& a : *answers) {
    EXPECT_GE(a.similarity, 0.0);
    EXPECT_LE(a.similarity, 1.0);
  }
}

TEST_F(EngineTest, ExactMatchesRankFirst) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  EXPECT_EQ((*answers)[0].tuple.At(CarDbGenerator::kModel).AsCat(), "Camry");
  EXPECT_DOUBLE_EQ((*answers)[0].similarity, 1.0);
}

TEST_F(EngineTest, AnswersAreDistinct) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Civic"));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  for (size_t i = 0; i < answers->size(); ++i) {
    for (size_t j = i + 1; j < answers->size(); ++j) {
      EXPECT_FALSE((*answers)[i].tuple == (*answers)[j].tuple);
    }
  }
}

TEST_F(EngineTest, MultiAttributeQuery) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  // Top answers should be price-compatible Camrys or similar sedans.
  const Tuple& top = (*answers)[0].tuple;
  EXPECT_EQ(top.At(CarDbGenerator::kModel).AsCat(), "Camry");
  double price = top.At(CarDbGenerator::kPrice).AsNum();
  EXPECT_GT(price, 5000);
  EXPECT_LT(price, 15000);
}

TEST_F(EngineTest, StatsAccumulateDuringAnswer) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Accord"));
  RelaxationStats stats;
  auto answers = engine_->Answer(q, RelaxationStrategy::kGuided, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_GT(stats.queries_issued, 0u);
  EXPECT_GT(stats.tuples_extracted, 0u);
}

TEST_F(EngineTest, InvalidQueriesRejected) {
  ImpreciseQuery empty;
  EXPECT_FALSE(engine_->Answer(empty).ok());

  ImpreciseQuery bad;
  bad.Bind("Bogus", Value::Cat("x"));
  EXPECT_FALSE(engine_->Answer(bad).ok());

  ImpreciseQuery mistyped;
  mistyped.Bind("Model", Value::Num(3));
  EXPECT_FALSE(engine_->Answer(mistyped).ok());
}

TEST_F(EngineTest, BaseQueryGeneralizedWhenEmpty) {
  // No car has this exact price, so Qpr returns nothing and must be
  // generalized along the attribute ordering (footnote 2).
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10001));
  auto base = engine_->DeriveBaseSet(q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_FALSE(base->empty());
  // The generalization should have kept the more important Model binding.
  EXPECT_EQ((*base)[0].At(CarDbGenerator::kModel).AsCat(), "Camry");
}

TEST_F(EngineTest, DeriveBaseSetUsesExactMatchesWhenAvailable) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto base = engine_->DeriveBaseSet(q);
  ASSERT_TRUE(base.ok());
  for (const Tuple& t : *base) {
    EXPECT_EQ(t.At(CarDbGenerator::kModel).AsCat(), "Camry");
  }
}

TEST_F(EngineTest, FindSimilarReachesTarget) {
  const Relation& hidden = db_->hidden_relation_for_testing();
  Tuple anchor = hidden.tuple(42);
  RelaxationStats stats;
  auto similar = engine_->FindSimilar(anchor, 15, 0.5,
                                      RelaxationStrategy::kGuided, &stats);
  ASSERT_TRUE(similar.ok());
  EXPECT_EQ(similar->size(), 15u);
  for (const RankedAnswer& a : *similar) {
    EXPECT_GE(a.similarity, 0.5);
    EXPECT_FALSE(a.tuple == anchor);
  }
  EXPECT_GE(stats.tuples_relevant, 15u);
  EXPECT_GE(stats.tuples_extracted, stats.tuples_relevant);
}

TEST_F(EngineTest, FindSimilarSortedByDescendingSimilarity) {
  const Relation& hidden = db_->hidden_relation_for_testing();
  auto similar = engine_->FindSimilar(hidden.tuple(7), 10, 0.4,
                                      RelaxationStrategy::kGuided);
  ASSERT_TRUE(similar.ok());
  for (size_t i = 1; i < similar->size(); ++i) {
    EXPECT_GE((*similar)[i - 1].similarity, (*similar)[i].similarity);
  }
}

TEST_F(EngineTest, GuidedBeatsRandomOnWorkPerRelevantTuple) {
  const Relation& hidden = db_->hidden_relation_for_testing();
  double guided_work = 0.0, random_work = 0.0;
  for (size_t i = 0; i < 10; ++i) {
    Tuple anchor = hidden.tuple(100 + i * 137);
    RelaxationStats g, r;
    ASSERT_TRUE(engine_
                    ->FindSimilar(anchor, 10, 0.7,
                                  RelaxationStrategy::kGuided, &g)
                    .ok());
    ASSERT_TRUE(engine_
                    ->FindSimilar(anchor, 10, 0.7,
                                  RelaxationStrategy::kRandom, &r)
                    .ok());
    guided_work += g.WorkPerRelevantTuple();
    random_work += r.WorkPerRelevantTuple();
  }
  // The AFD-guided order should not need more extracted tuples per relevant
  // tuple than random relaxation (paper Figures 6 vs 7). Averaged over 10
  // anchors; a 30% slack absorbs small-database variance.
  EXPECT_LE(guided_work, random_work * 1.30);
}

TEST_F(EngineTest, FindSimilarRejectsArityMismatch) {
  EXPECT_FALSE(engine_->FindSimilar(Tuple({Value::Cat("x")}), 5, 0.5,
                                    RelaxationStrategy::kGuided)
                   .ok());
}

TEST_F(EngineTest, ApplyFeedbackShiftsWeightsAndNormalizes) {
  // Build a private engine so the suite-shared one keeps its weights.
  auto knowledge = BuildKnowledge(*db_, *options_);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(db_, knowledge.TakeValue(), *options_);
  std::vector<double> before = engine.knowledge().WimpVector();

  const Relation& hidden = db_->hidden_relation_for_testing();
  Tuple probe = hidden.tuple(11);
  auto answers =
      engine.FindSimilar(probe, 10, 0.4, RelaxationStrategy::kGuided);
  ASSERT_TRUE(answers.ok());
  ASSERT_GE(answers->size(), 3u);

  // A contrarian user: reverses the system's order entirely.
  std::vector<JudgedAnswer> judged;
  for (size_t i = 0; i < answers->size(); ++i) {
    judged.push_back(JudgedAnswer{
        (*answers)[i].tuple, static_cast<int>(answers->size() - i)});
  }
  RelevanceFeedback feedback;
  auto updated = engine.ApplyFeedback(feedback, probe, judged);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  double total = 0.0;
  for (double w : *updated) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The engine's live weights changed.
  EXPECT_NE(*updated, before);
  EXPECT_EQ(engine.knowledge().WimpVector(), *updated);
}

TEST_F(EngineTest, NumericSimKindsAllProduceValidAnswers) {
  for (NumericSimKind kind : {NumericSimKind::kQueryRelative,
                              NumericSimKind::kMinMaxScaled,
                              NumericSimKind::kGaussian}) {
    AimqOptions options = *options_;
    options.numeric_sim = kind;
    auto knowledge = BuildKnowledge(*db_, options);
    ASSERT_TRUE(knowledge.ok());
    AimqEngine engine(db_, knowledge.TakeValue(), options);
    ImpreciseQuery q;
    q.Bind("Model", Value::Cat("Corolla"));
    q.Bind("Price", Value::Num(7000));
    auto answers = engine.Answer(q);
    ASSERT_TRUE(answers.ok());
    ASSERT_FALSE(answers->empty());
    for (const RankedAnswer& a : *answers) {
      EXPECT_GE(a.similarity, 0.0);
      EXPECT_LE(a.similarity, 1.0 + 1e-12);
    }
  }
}

TEST_F(EngineTest, AnswersAreDeterministicForGuidedStrategy) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Jetta"));
  auto a = engine_->Answer(q);
  auto b = engine_->Answer(q);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].tuple, (*b)[i].tuple);
    EXPECT_DOUBLE_EQ((*a)[i].similarity, (*b)[i].similarity);
  }
}

TEST_F(EngineTest, AllAnswersExistInTheDatabase) {
  ImpreciseQuery q;
  q.Bind("Make", Value::Cat("Subaru"));
  q.Bind("Mileage", Value::Num(60000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  const Relation& hidden = db_->hidden_relation_for_testing();
  std::unordered_set<Tuple, TupleHash> all(hidden.tuples().begin(),
                                           hidden.tuples().end());
  for (const RankedAnswer& a : *answers) {
    EXPECT_TRUE(all.count(a.tuple)) << a.tuple.ToString();
  }
}

TEST_F(EngineTest, DuplicateRelaxationProbesAreDeduplicated) {
  // Base tuples of the same model share deep relaxations: probe count must
  // stay well below base_set_size × combinations.
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Taurus"));
  RelaxationStats stats;
  auto answers = engine_->Answer(q, RelaxationStrategy::kGuided, &stats);
  ASSERT_TRUE(answers.ok());
  auto base = engine_->DeriveBaseSet(q);
  ASSERT_TRUE(base.ok());
  size_t base_n = std::min(base->size(), engine_->options().base_set_limit);
  ASSERT_GT(base_n, 1u);
  // Without dedup the engine could issue up to base_n × 126 combination
  // queries (some saved by the per-tuple early stop); dedup must cut that
  // at least in half.
  EXPECT_LT(stats.queries_issued, base_n * 63);
}

TEST_F(EngineTest, AnswerCacheHitsOnRepeatedQueries) {
  auto knowledge = BuildKnowledge(*db_, *options_);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(db_, knowledge.TakeValue(), *options_);
  engine.SetAnswerCacheCapacity(16);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto first = engine.Answer(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.answer_cache_hits(), 0u);
  EXPECT_EQ(engine.answer_cache_size(), 1u);

  db_->ResetStats();
  auto second = engine.Answer(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.answer_cache_hits(), 1u);
  // A cache hit never touches the source.
  EXPECT_EQ(db_->stats().queries_issued, 0u);
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].tuple, (*second)[i].tuple);
  }
}

TEST_F(EngineTest, FeedbackInvalidatesAnswerCache) {
  auto knowledge = BuildKnowledge(*db_, *options_);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(db_, knowledge.TakeValue(), *options_);
  engine.SetAnswerCacheCapacity(16);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Accord"));
  auto answers = engine.Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_GE(answers->size(), 2u);
  EXPECT_EQ(engine.answer_cache_size(), 1u);

  std::vector<JudgedAnswer> judged;
  for (size_t i = 0; i < answers->size(); ++i) {
    judged.push_back(JudgedAnswer{
        (*answers)[i].tuple, static_cast<int>(answers->size() - i)});
  }
  RelevanceFeedback feedback;
  ASSERT_TRUE(engine.ApplyFeedback(feedback, (*answers)[0].tuple, judged)
                  .ok());
  EXPECT_EQ(engine.answer_cache_size(), 0u);
}

TEST_F(EngineTest, RandomStrategyIsNeverCached) {
  auto knowledge = BuildKnowledge(*db_, *options_);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(db_, knowledge.TakeValue(), *options_);
  engine.SetAnswerCacheCapacity(16);
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Civic"));
  ASSERT_TRUE(engine.Answer(q, RelaxationStrategy::kRandom).ok());
  EXPECT_EQ(engine.answer_cache_size(), 0u);
}

TEST_F(EngineTest, AttachedQueryLogRecordsAnswers) {
  auto knowledge = BuildKnowledge(*db_, *options_);
  ASSERT_TRUE(knowledge.ok());
  AimqEngine engine(db_, knowledge.TakeValue(), *options_);
  QueryLog log(&db_->schema());
  engine.AttachQueryLog(&log);

  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(9000));
  ASSERT_TRUE(engine.Answer(q).ok());
  ASSERT_TRUE(engine.Answer(q).ok());
  EXPECT_EQ(log.NumQueries(), 2u);
  EXPECT_EQ(log.BindCount(CarDbGenerator::kModel), 2u);
  EXPECT_EQ(log.BindCount(CarDbGenerator::kPrice), 2u);
  EXPECT_EQ(log.BindCount(CarDbGenerator::kColor), 0u);

  engine.AttachQueryLog(nullptr);
  ASSERT_TRUE(engine.Answer(q).ok());
  EXPECT_EQ(log.NumQueries(), 2u);
}

TEST_F(EngineTest, WorkPerRelevantTupleMetric) {
  RelaxationStats stats;
  stats.tuples_extracted = 40;
  stats.tuples_relevant = 10;
  EXPECT_DOUBLE_EQ(stats.WorkPerRelevantTuple(), 4.0);
  stats.tuples_relevant = 0;
  EXPECT_DOUBLE_EQ(stats.WorkPerRelevantTuple(), 40.0);
}

}  // namespace
}  // namespace aimq
