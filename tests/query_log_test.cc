#include "workload/query_log.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>
#include <unistd.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

ImpreciseQuery Q(std::initializer_list<const char*> attrs) {
  ImpreciseQuery q;
  for (const char* a : attrs) {
    q.Bind(a, std::string(a) == "Price" ? Value::Num(1) : Value::Cat("x"));
  }
  return q;
}

TEST(QueryLogTest, RecordsBindCounts) {
  Schema s = CarSchema();
  QueryLog log(&s);
  ASSERT_TRUE(log.Record(Q({"Model", "Price"})).ok());
  ASSERT_TRUE(log.Record(Q({"Model"})).ok());
  ASSERT_TRUE(log.Record(Q({"Make", "Model", "Price"})).ok());
  EXPECT_EQ(log.NumQueries(), 3u);
  EXPECT_EQ(log.BindCount(0), 1u);  // Make
  EXPECT_EQ(log.BindCount(1), 3u);  // Model
  EXPECT_EQ(log.BindCount(2), 2u);  // Price
}

TEST(QueryLogTest, RejectsUnknownAttributeAtomically) {
  Schema s = CarSchema();
  QueryLog log(&s);
  ImpreciseQuery bad;
  bad.Bind("Model", Value::Cat("x"));
  bad.Bind("Bogus", Value::Cat("y"));
  EXPECT_FALSE(log.Record(bad).ok());
  // Nothing was recorded, not even the valid binding.
  EXPECT_EQ(log.NumQueries(), 0u);
  EXPECT_EQ(log.BindCount(1), 0u);
}

TEST(QueryLogTest, ImportanceWeightsFollowFrequency) {
  Schema s = CarSchema();
  QueryLog log(&s);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(log.Record(Q({"Model"})).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(log.Record(Q({"Price"})).ok());
  auto w = log.ImportanceWeights(/*smoothing=*/0.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.8);
  EXPECT_DOUBLE_EQ(w[2], 0.2);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
}

TEST(QueryLogTest, SmoothingKeepsUnqueriedAttributesAlive) {
  Schema s = CarSchema();
  QueryLog log(&s);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(log.Record(Q({"Model"})).ok());
  auto w = log.ImportanceWeights(1.0);
  EXPECT_GT(w[0], 0.0);
  EXPECT_GT(w[1], w[0]);
}

TEST(QueryLogTest, EmptyLogIsUniform) {
  Schema s = CarSchema();
  QueryLog log(&s);
  auto w = log.ImportanceWeights();
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 3.0);
}

TEST(QueryLogTest, SaveLoadRoundTrip) {
  Schema s = CarSchema();
  QueryLog log(&s);
  ASSERT_TRUE(log.Record(Q({"Model", "Price"})).ok());
  ASSERT_TRUE(log.Record(Q({"Make"})).ok());
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_qlog_" + std::to_string(::getpid()) + ".csv");
  ASSERT_TRUE(log.Save(path.string()).ok());
  auto loaded = QueryLog::Load(&s, path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumQueries(), 2u);
  for (size_t a = 0; a < 3; ++a) {
    EXPECT_EQ(loaded->BindCount(a), log.BindCount(a)) << a;
  }
  std::filesystem::remove(path);
}

TEST(QueryLogTest, TraceDisabledByDefault) {
  Schema s = CarSchema();
  QueryLog log(&s);
  ASSERT_TRUE(log.Record(Q({"Model"})).ok());
  EXPECT_TRUE(log.trace().empty());
}

TEST(QueryLogTest, TraceRetainsQueriesUpToCapacity) {
  Schema s = CarSchema();
  QueryLog log(&s);
  log.EnableTrace(2);
  ASSERT_TRUE(log.Record(Q({"Model"})).ok());
  ASSERT_TRUE(log.Record(Q({"Price"})).ok());
  ASSERT_TRUE(log.Record(Q({"Make"})).ok());  // beyond capacity: dropped
  EXPECT_EQ(log.NumQueries(), 3u);  // aggregate counts keep going
  ASSERT_EQ(log.trace().size(), 2u);
  EXPECT_EQ(log.trace()[0].bindings()[0].attribute, "Model");
  EXPECT_EQ(log.trace()[1].bindings()[0].attribute, "Price");
  // Shrinking drops the tail.
  log.EnableTrace(1);
  ASSERT_EQ(log.trace().size(), 1u);
  EXPECT_EQ(log.trace()[0].bindings()[0].attribute, "Model");
}

TEST(QueryLogTest, TraceSaveLoadRoundTrip) {
  Schema s = CarSchema();
  QueryLog log(&s);
  log.EnableTrace(16);
  ImpreciseQuery q1;
  q1.Bind("Model", Value::Cat("Econoline Van"));  // space must survive
  q1.Bind("Price", Value::Num(10000));
  ImpreciseQuery q2;
  q2.Bind("Make", Value::Cat("Toyota"));
  ASSERT_TRUE(log.Record(q1).ok());
  ASSERT_TRUE(log.Record(q2).ok());
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_trace_" + std::to_string(::getpid()) + ".txt");
  ASSERT_TRUE(log.SaveTrace(path.string()).ok());
  auto loaded = QueryLog::LoadTrace(&s, path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  ASSERT_EQ((*loaded)[0].bindings().size(), 2u);
  EXPECT_EQ((*loaded)[0].bindings()[0].attribute, "Model");
  EXPECT_EQ((*loaded)[0].bindings()[0].value.AsCat(), "Econoline Van");
  EXPECT_EQ((*loaded)[0].bindings()[1].attribute, "Price");
  EXPECT_DOUBLE_EQ((*loaded)[0].bindings()[1].value.AsNum(), 10000.0);
  EXPECT_EQ((*loaded)[1].bindings()[0].value.AsCat(), "Toyota");
  std::filesystem::remove(path);
}

TEST(QueryLogTest, LoadTraceReportsLineOfMalformedQuery) {
  Schema s = CarSchema();
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_trace_bad_" + std::to_string(::getpid()) + ".txt");
  {
    std::ofstream out(path);
    out << "Q(Model like 'Camry')\n";
    out << "\n";  // blank lines are skipped
    out << "Q(Bogus like 'x')\n";
  }
  auto loaded = QueryLog::LoadTrace(&s, path.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().context().find(":3"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(BlendWeightsTest, ConvexCombination) {
  std::vector<double> data{0.8, 0.2, 0.0};
  std::vector<double> query{0.0, 0.5, 0.5};
  auto pure_data = BlendWeights(data, query, 0.0);
  ASSERT_TRUE(pure_data.ok());
  EXPECT_EQ(*pure_data, data);
  auto pure_query = BlendWeights(data, query, 1.0);
  ASSERT_TRUE(pure_query.ok());
  EXPECT_EQ(*pure_query, query);
  auto half = BlendWeights(data, query, 0.5);
  ASSERT_TRUE(half.ok());
  EXPECT_NEAR((*half)[0], 0.4, 1e-12);
  EXPECT_NEAR((*half)[1], 0.35, 1e-12);
  EXPECT_NEAR((*half)[2], 0.25, 1e-12);
}

TEST(BlendWeightsTest, Validation) {
  EXPECT_FALSE(BlendWeights({0.5}, {0.5, 0.5}, 0.5).ok());
  EXPECT_FALSE(BlendWeights({1.0}, {1.0}, -0.1).ok());
  EXPECT_FALSE(BlendWeights({1.0}, {1.0}, 1.1).ok());
}

}  // namespace
}  // namespace aimq
