#include "datagen/censusdb.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace aimq {
namespace {

CensusDataset SmallCensus() {
  CensusDbSpec spec;
  spec.num_tuples = 8000;
  spec.seed = 4;
  return CensusDbGenerator(spec).Generate();
}

TEST(CensusDbTest, SchemaMatchesPaper) {
  Schema s = CensusDbGenerator::MakeSchema();
  ASSERT_EQ(s.NumAttributes(), 13u);
  EXPECT_EQ(s.attribute(CensusDbGenerator::kAge).name, "Age");
  EXPECT_EQ(s.attribute(CensusDbGenerator::kAge).type, AttrType::kNumeric);
  EXPECT_EQ(s.attribute(CensusDbGenerator::kEducation).type,
            AttrType::kCategorical);
  EXPECT_EQ(s.attribute(CensusDbGenerator::kDemographicWeight).name,
            "Demographic-weight");
  EXPECT_EQ(s.attribute(CensusDbGenerator::kHoursPerWeek).type,
            AttrType::kNumeric);
  EXPECT_EQ(s.attribute(CensusDbGenerator::kNativeCountry).name,
            "Native-Country");
}

TEST(CensusDbTest, GeneratesRequestedCountWithLabels) {
  CensusDataset d = SmallCensus();
  EXPECT_EQ(d.relation.NumTuples(), 8000u);
  EXPECT_EQ(d.labels.size(), 8000u);
  for (int l : d.labels) {
    EXPECT_TRUE(l == 0 || l == 1);
  }
}

TEST(CensusDbTest, PositiveRateRealistic) {
  // The Adult dataset has ~24% ">50K"; our planted structure should land in
  // a similar band.
  CensusDataset d = SmallCensus();
  EXPECT_GT(d.PositiveRate(), 0.10);
  EXPECT_LT(d.PositiveRate(), 0.45);
}

TEST(CensusDbTest, DeterministicPerSeed) {
  CensusDbSpec spec;
  spec.num_tuples = 500;
  spec.seed = 7;
  CensusDataset a = CensusDbGenerator(spec).Generate();
  CensusDataset b = CensusDbGenerator(spec).Generate();
  EXPECT_EQ(a.relation.tuples(), b.relation.tuples());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(CensusDbTest, AgesInRange) {
  CensusDataset d = SmallCensus();
  for (const Tuple& t : d.relation.tuples()) {
    double age = t.At(CensusDbGenerator::kAge).AsNum();
    EXPECT_GE(age, 17.0);
    EXPECT_LE(age, 90.0);
  }
}

TEST(CensusDbTest, HoursSpikeAtForty) {
  CensusDataset d = SmallCensus();
  size_t at_40 = 0;
  for (const Tuple& t : d.relation.tuples()) {
    at_40 += (t.At(CensusDbGenerator::kHoursPerWeek).AsNum() == 40.0);
  }
  EXPECT_GT(at_40, d.relation.NumTuples() / 3);
}

TEST(CensusDbTest, MaritalStatusDeterminesSpouseRelationship) {
  CensusDataset d = SmallCensus();
  for (const Tuple& t : d.relation.tuples()) {
    const std::string& marital =
        t.At(CensusDbGenerator::kMaritalStatus).AsCat();
    const std::string& rel = t.At(CensusDbGenerator::kRelationship).AsCat();
    if (rel == "Husband" || rel == "Wife") {
      EXPECT_EQ(marital, "Married-civ-spouse");
    }
  }
}

TEST(CensusDbTest, EducationCorrelatesWithIncome) {
  CensusDataset d = SmallCensus();
  size_t deg_pos = 0, deg_n = 0, low_pos = 0, low_n = 0;
  for (size_t i = 0; i < d.relation.NumTuples(); ++i) {
    const std::string& edu =
        d.relation.tuple(i).At(CensusDbGenerator::kEducation).AsCat();
    if (edu == "Masters" || edu == "Doctorate" || edu == "Prof-school") {
      deg_pos += d.labels[i];
      ++deg_n;
    } else if (edu == "HS-grad" || edu == "11th" || edu == "9th") {
      low_pos += d.labels[i];
      ++low_n;
    }
  }
  ASSERT_GT(deg_n, 100u);
  ASSERT_GT(low_n, 100u);
  EXPECT_GT(static_cast<double>(deg_pos) / deg_n,
            2.0 * static_cast<double>(low_pos) / low_n);
}

TEST(CensusDbTest, DemographicWeightHighCardinality) {
  CensusDataset d = SmallCensus();
  std::set<double> distinct;
  for (const Tuple& t : d.relation.tuples()) {
    distinct.insert(t.At(CensusDbGenerator::kDemographicWeight).AsNum());
  }
  // fnlwgt-like: most values unique.
  EXPECT_GT(distinct.size(), d.relation.NumTuples() / 2);
}

TEST(CensusDbTest, CapitalGainMostlyZero) {
  CensusDataset d = SmallCensus();
  size_t zero = 0;
  for (const Tuple& t : d.relation.tuples()) {
    zero += (t.At(CensusDbGenerator::kCapitalGain).AsNum() == 0.0);
  }
  EXPECT_GT(zero, d.relation.NumTuples() * 8 / 10);
}

TEST(CensusDbTest, OccupationRespectsEducationFloor) {
  CensusDataset d = SmallCensus();
  for (const Tuple& t : d.relation.tuples()) {
    if (t.At(CensusDbGenerator::kOccupation).AsCat() == "Prof-specialty") {
      const std::string& edu = t.At(CensusDbGenerator::kEducation).AsCat();
      EXPECT_TRUE(edu == "Bachelors" || edu == "Masters" ||
                  edu == "Prof-school" || edu == "Doctorate")
          << edu;
    }
  }
}

}  // namespace
}  // namespace aimq
