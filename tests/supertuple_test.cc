#include "similarity/supertuple.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Relation SmallCarDb() {
  Relation r(CarSchema());
  auto add = [&](const char* make, const char* model, double price) {
    ASSERT_TRUE(r.Append(Tuple({Value::Cat(make), Value::Cat(model),
                                Value::Num(price)}))
                    .ok());
  };
  add("Ford", "Focus", 10000);
  add("Ford", "Focus", 12000);
  add("Ford", "F150", 30000);
  add("Toyota", "Camry", 11000);
  add("Toyota", "Camry", 12000);
  add("Toyota", "Corolla", 9000);
  return r;
}

TEST(SuperTupleBuilderTest, BuildAllCoversEveryDistinctValue) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  auto sts = builder.BuildAll(0);
  ASSERT_TRUE(sts.ok());
  ASSERT_EQ(sts->size(), 2u);  // Ford, Toyota
  EXPECT_EQ((*sts)[0].av().value, Value::Cat("Ford"));
  EXPECT_EQ((*sts)[0].support(), 3u);
  EXPECT_EQ((*sts)[1].av().value, Value::Cat("Toyota"));
  EXPECT_EQ((*sts)[1].support(), 3u);
}

TEST(SuperTupleBuilderTest, BagsCountAssociatedValues) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  auto st = builder.Build(AVPair(0, Value::Cat("Ford")));
  ASSERT_TRUE(st.ok());
  // Model bag for Make=Ford: Focus ×2, F150 ×1.
  EXPECT_EQ(st->bag(1).Count("Focus"), 2u);
  EXPECT_EQ(st->bag(1).Count("F150"), 1u);
  EXPECT_EQ(st->bag(1).Count("Camry"), 0u);
  // The bound attribute's own bag stays empty.
  EXPECT_TRUE(st->bag(0).Empty());
}

TEST(SuperTupleBuilderTest, NumericValuesAreBinned) {
  Relation r = SmallCarDb();
  SuperTupleOptions opts;
  opts.numeric_bins = 3;  // 9000..30000 → width 7000
  SuperTupleBuilder builder(r, opts);
  // 10000 and 12000 fall in bin 0 [9000,16000); 30000 in the last bin.
  EXPECT_EQ(builder.KeywordFor(2, Value::Num(10000)),
            builder.KeywordFor(2, Value::Num(12000)));
  EXPECT_NE(builder.KeywordFor(2, Value::Num(10000)),
            builder.KeywordFor(2, Value::Num(30000)));
}

TEST(SuperTupleBuilderTest, BinLabelsShowRange) {
  Relation r = SmallCarDb();
  SuperTupleOptions opts;
  opts.numeric_bins = 3;
  SuperTupleBuilder builder(r, opts);
  EXPECT_EQ(builder.KeywordFor(2, Value::Num(9000)), "9000-16000");
}

TEST(SuperTupleBuilderTest, OutOfRangeValuesClampToEdgeBins) {
  Relation r = SmallCarDb();
  SuperTupleOptions opts;
  opts.numeric_bins = 3;
  SuperTupleBuilder builder(r, opts);
  EXPECT_EQ(builder.KeywordFor(2, Value::Num(-100)),
            builder.KeywordFor(2, Value::Num(9000)));
  EXPECT_EQ(builder.KeywordFor(2, Value::Num(1e9)),
            builder.KeywordFor(2, Value::Num(30000)));
}

TEST(SuperTupleBuilderTest, CategoricalKeywordIsValueItself) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  EXPECT_EQ(builder.KeywordFor(1, Value::Cat("Camry")), "Camry");
  EXPECT_EQ(builder.KeywordFor(1, Value()), "");
}

TEST(SuperTupleBuilderTest, RejectsNumericAttribute) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  EXPECT_FALSE(builder.BuildAll(2).ok());
  EXPECT_FALSE(builder.BuildAll(99).ok());
}

TEST(SuperTupleBuilderTest, UnknownValueGivesEmptySupertuple) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  auto st = builder.Build(AVPair(0, Value::Cat("BMW")));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->support(), 0u);
  EXPECT_TRUE(st->bag(1).Empty());
}

TEST(SuperTupleBuilderTest, ConstantNumericColumnSafe) {
  Relation r(CarSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(r.Append(Tuple({Value::Cat("Ford"), Value::Cat("Focus"),
                                Value::Num(5000)}))
                    .ok());
  }
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  // All identical values land in one bin; no division by zero.
  EXPECT_EQ(builder.KeywordFor(2, Value::Num(5000)),
            builder.KeywordFor(2, Value::Num(5000)));
  auto st = builder.Build(AVPair(0, Value::Cat("Ford")));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->bag(2).TotalSize(), 3u);
  EXPECT_EQ(st->bag(2).DistinctSize(), 1u);
}

TEST(SuperTupleTest, ToStringListsTopKeywords) {
  Relation r = SmallCarDb();
  SuperTupleBuilder builder(r, SuperTupleOptions{});
  auto st = builder.Build(AVPair(0, Value::Cat("Ford")));
  ASSERT_TRUE(st.ok());
  std::string s = st->ToString(r.schema());
  EXPECT_NE(s.find("Make=Ford"), std::string::npos);
  EXPECT_NE(s.find("Focus:2"), std::string::npos);
}

TEST(AVPairTest, EqualityAndHash) {
  AVPair a(0, Value::Cat("Ford"));
  AVPair b(0, Value::Cat("Ford"));
  AVPair c(1, Value::Cat("Ford"));
  AVPair d(0, Value::Cat("Kia"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(AVPairHash{}(a), AVPairHash{}(b));
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(AVPairTest, ToString) {
  Schema s = CarSchema();
  EXPECT_EQ(AVPair(0, Value::Cat("Ford")).ToString(s), "Make=Ford");
  EXPECT_EQ(AVPair(2, Value::Num(100)).ToString(s), "Price=100");
}

}  // namespace
}  // namespace aimq
