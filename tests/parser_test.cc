#include "query/parser.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : schema_(CarSchema()), parser_(&schema_) {}
  Schema schema_;
  QueryParser parser_;
};

TEST_F(ParserTest, ParsesPreciseEquality) {
  auto q = parser_.ParsePrecise("CarDB(Make = Ford, Price = 10000)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->NumPredicates(), 2u);
  EXPECT_EQ(q->predicates()[0], Predicate::Eq("Make", Value::Cat("Ford")));
  EXPECT_EQ(q->predicates()[1], Predicate::Eq("Price", Value::Num(10000)));
}

TEST_F(ParserTest, ParsesRangeOperators) {
  auto q = parser_.ParsePrecise("CarDB(Price < 10000, Price >= 5000)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates()[0].op, CompareOp::kLt);
  EXPECT_EQ(q->predicates()[1].op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(q->predicates()[1].value.AsNum(), 5000.0);
}

TEST_F(ParserTest, RelationNameIsOptional) {
  auto q = parser_.ParsePrecise("(Make = Kia)");
  ASSERT_TRUE(q.ok());
  auto bare = parser_.ParsePrecise("Make = Kia");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(*q, *bare);
}

TEST_F(ParserTest, QuotedValuesKeepSpacesAndCommas) {
  auto q = parser_.ParsePrecise("CarDB(Model = 'Econoline Van')");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates()[0].value, Value::Cat("Econoline Van"));

  auto comma = parser_.ParsePrecise("CarDB(Model = 'a,b', Make = Ford)");
  ASSERT_TRUE(comma.ok());
  ASSERT_EQ(comma->NumPredicates(), 2u);
  EXPECT_EQ(comma->predicates()[0].value, Value::Cat("a,b"));
}

TEST_F(ParserTest, ParsesImpreciseQuery) {
  auto q = parser_.ParseImprecise("CarDB(Model like Camry, Price like 10000)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->NumBindings(), 2u);
  EXPECT_EQ(q->bindings()[0].attribute, "Model");
  EXPECT_EQ(q->bindings()[0].value, Value::Cat("Camry"));
  EXPECT_EQ(q->bindings()[1].value, Value::Num(10000));
}

TEST_F(ParserTest, LikeIsCaseInsensitive) {
  EXPECT_TRUE(parser_.ParseImprecise("(Model LIKE Camry)").ok());
  EXPECT_TRUE(parser_.ParseImprecise("(Model Like Camry)").ok());
}

TEST_F(ParserTest, PreciseRejectsLike) {
  EXPECT_FALSE(parser_.ParsePrecise("(Model like Camry)").ok());
}

TEST_F(ParserTest, ImpreciseRejectsPreciseOps) {
  EXPECT_FALSE(parser_.ParseImprecise("(Price < 10000)").ok());
}

TEST_F(ParserTest, HybridSplitsConstraints) {
  SelectionQuery precise;
  ImpreciseQuery imprecise;
  ASSERT_TRUE(parser_
                  .ParseHybrid("CarDB(Model like Camry, Price < 12000)",
                               &precise, &imprecise)
                  .ok());
  EXPECT_EQ(imprecise.NumBindings(), 1u);
  EXPECT_EQ(precise.NumPredicates(), 1u);
  EXPECT_EQ(precise.predicates()[0].op, CompareOp::kLt);
}

TEST_F(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(parser_.ParsePrecise("").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB()").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(Make =)").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(= Ford)").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(Make ~ Ford)").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(Make is Ford)").ok());
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(Make = Ford,)").ok());
}

TEST_F(ParserTest, RejectsUnknownAttribute) {
  auto q = parser_.ParsePrecise("CarDB(Bogus = 1)");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, RejectsTypeMismatch) {
  EXPECT_FALSE(parser_.ParsePrecise("CarDB(Price = cheap)").ok());
  // Numeric text for a categorical attribute is a valid categorical value.
  auto q = parser_.ParsePrecise("CarDB(Make = 2005)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicates()[0].value, Value::Cat("2005"));
}

TEST_F(ParserTest, WhitespaceInsensitive) {
  auto a = parser_.ParseImprecise("  CarDB (  Model like Camry ,Price like 9000 ) ");
  auto b = parser_.ParseImprecise("CarDB(Model like Camry, Price like 9000)");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(ParserTest, RoundTripsWithToString) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  auto parsed = parser_.ParseImprecise(q.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, q);
}

}  // namespace
}  // namespace aimq
