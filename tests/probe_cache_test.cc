#include "webdb/probe_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace aimq {
namespace {

Schema TwoColumnSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical}})
      .ValueOrDie();
}

WebDatabase MakeDb() {
  Relation data(TwoColumnSchema());
  EXPECT_TRUE(
      data.Append(Tuple({Value::Cat("Toyota"), Value::Cat("Camry")})).ok());
  EXPECT_TRUE(
      data.Append(Tuple({Value::Cat("Toyota"), Value::Cat("Corolla")})).ok());
  EXPECT_TRUE(
      data.Append(Tuple({Value::Cat("Honda"), Value::Cat("Civic")})).ok());
  return WebDatabase("ToyDB", std::move(data));
}

SelectionQuery MakeQuery(const std::string& make) {
  return SelectionQuery({Predicate::Eq("Make", Value::Cat(make))});
}

TEST(ProbeCacheTest, MissProbesThenHitSparesTheSource) {
  WebDatabase db = MakeDb();
  ProbeCache cache(8);

  bool hit = true;
  auto first = cache.Execute(db, MakeQuery("Toyota"), &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(first->size(), 2u);
  EXPECT_EQ(db.stats().queries_issued, 1u);

  auto second = cache.Execute(db, MakeQuery("Toyota"), &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(second->size(), 2u);
  // The source was not probed again.
  EXPECT_EQ(db.stats().queries_issued, 1u);
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i], (*second)[i]);
  }

  ProbeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ProbeCacheTest, EquivalentQueriesShareOneEntry) {
  WebDatabase db = MakeDb();
  ProbeCache cache(8);

  SelectionQuery forward({Predicate::Eq("Make", Value::Cat("Toyota")),
                          Predicate::Eq("Model", Value::Cat("Camry"))});
  SelectionQuery reversed({Predicate::Eq("Model", Value::Cat("Camry")),
                           Predicate::Eq("Make", Value::Cat("Toyota"))});
  EXPECT_EQ(ProbeCache::CanonicalKey(forward),
            ProbeCache::CanonicalKey(reversed));

  ASSERT_TRUE(cache.Execute(db, forward).ok());
  bool hit = false;
  auto answers = cache.Execute(db, reversed, &hit);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(answers->size(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(db.stats().queries_issued, 1u);
}

TEST(ProbeCacheTest, DistinctQueriesDoNotCollide) {
  WebDatabase db = MakeDb();
  ProbeCache cache(8);
  ASSERT_TRUE(cache.Execute(db, MakeQuery("Toyota")).ok());
  bool hit = true;
  auto honda = cache.Execute(db, MakeQuery("Honda"), &hit);
  ASSERT_TRUE(honda.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(honda->size(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProbeCacheTest, LruEvictionDropsTheColdestEntry) {
  WebDatabase db = MakeDb();
  ProbeCache cache(2);

  SelectionQuery toyota = MakeQuery("Toyota");
  SelectionQuery honda = MakeQuery("Honda");
  SelectionQuery camry({Predicate::Eq("Model", Value::Cat("Camry"))});

  ASSERT_TRUE(cache.Execute(db, toyota).ok());  // LRU order: [toyota]
  ASSERT_TRUE(cache.Execute(db, honda).ok());   // [honda, toyota]
  ASSERT_TRUE(cache.Execute(db, toyota).ok());  // refresh: [toyota, honda]
  ASSERT_TRUE(cache.Execute(db, camry).ok());   // evicts honda
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(db, toyota));
  EXPECT_TRUE(cache.Contains(db, camry));
  EXPECT_FALSE(cache.Contains(db, honda));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted query must be re-probed.
  const uint64_t probes_before = db.stats().queries_issued;
  bool hit = true;
  ASSERT_TRUE(cache.Execute(db, honda, &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(db.stats().queries_issued, probes_before + 1);
}

TEST(ProbeCacheTest, ZeroCapacityIsAPassThrough) {
  WebDatabase db = MakeDb();
  ProbeCache cache(0);
  bool hit = true;
  ASSERT_TRUE(cache.Execute(db, MakeQuery("Toyota"), &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.Execute(db, MakeQuery("Toyota"), &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(db.stats().queries_issued, 2u);
}

TEST(ProbeCacheTest, ErrorsAreNotCached) {
  WebDatabase db = MakeDb();
  ProbeCache cache(8);
  SelectionQuery bad({Predicate::Eq("Nope", Value::Cat("x"))});
  EXPECT_FALSE(cache.Execute(db, bad).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ProbeCacheTest, ClearResetsEntriesAndCounters) {
  WebDatabase db = MakeDb();
  ProbeCache cache(8);
  ASSERT_TRUE(cache.Execute(db, MakeQuery("Toyota")).ok());
  ASSERT_TRUE(cache.Execute(db, MakeQuery("Toyota")).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// Wraps the snapshot of \p base extended by \p delta as a new source at
// \p version (what live ingest's publish does).
WebDatabase ExtendDb(const WebDatabase& base, const std::vector<Tuple>& delta,
                     uint64_t version) {
  auto extended = ColumnarRelation::Extend(*base.columnar(), delta, version);
  EXPECT_TRUE(extended.ok());
  return WebDatabase(base.name(), *extended);
}

TEST(ProbeCacheTest, EvictVersionsBelowDropsOnlySupersededEntries) {
  WebDatabase v0 = MakeDb();
  WebDatabase v1 =
      ExtendDb(v0, {Tuple({Value::Cat("Ford"), Value::Cat("Focus")})}, 1);
  ProbeCache cache(8);

  ASSERT_TRUE(cache.Execute(v0, MakeQuery("Toyota")).ok());
  ASSERT_TRUE(cache.Execute(v0, MakeQuery("Honda")).ok());
  ASSERT_TRUE(cache.Execute(v1, MakeQuery("Ford")).ok());
  ASSERT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.EvictVersionsBelow(1), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Contains(v0, MakeQuery("Toyota")));
  EXPECT_FALSE(cache.Contains(v0, MakeQuery("Honda")));
  EXPECT_TRUE(cache.Contains(v1, MakeQuery("Ford")));

  // Aging is accounted separately from LRU pressure.
  const ProbeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.version_evictions, 2u);
  EXPECT_EQ(stats.evictions, 0u);

  // Idempotent once the old version is gone.
  EXPECT_EQ(cache.EvictVersionsBelow(1), 0u);
  EXPECT_EQ(cache.stats().version_evictions, 2u);
}

TEST(ProbeCacheTest, StaleVersionEntriesNeverAnswerNewVersionProbes) {
  WebDatabase v0 = MakeDb();
  ProbeCache cache(8);
  auto old_rows = cache.ExecuteRows(v0, MakeQuery("Toyota"));
  ASSERT_TRUE(old_rows.ok());
  ASSERT_EQ(old_rows->size(), 2u);

  // Same logical query against the extended snapshot: the cached v0 answer
  // must not be served even though it was never explicitly evicted — the
  // key embeds the snapshot version.
  WebDatabase v1 =
      ExtendDb(v0, {Tuple({Value::Cat("Toyota"), Value::Cat("Prius")})}, 1);
  bool hit = true;
  auto new_rows = cache.ExecuteRows(v1, MakeQuery("Toyota"), &hit);
  ASSERT_TRUE(new_rows.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(new_rows->size(), 3u);
}

TEST(ProbeCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  WebDatabase db = MakeDb();
  ProbeCache cache(16);
  const std::vector<std::string> makes{"Toyota", "Honda", "Toyota", "Honda"};
  const size_t kRounds = 400;

  std::atomic<size_t> wrong_answers{0};
  ParallelFor(kRounds, 8, [&](size_t i) {
    const std::string& make = makes[i % makes.size()];
    auto result = cache.Execute(db, MakeQuery(make));
    if (!result.ok()) {
      ++wrong_answers;
      return;
    }
    const size_t expected = make == "Toyota" ? 2 : 1;
    if (result->size() != expected) ++wrong_answers;
    for (const Tuple& t : *result) {
      if (t.At(0).AsCat() != make) ++wrong_answers;
    }
  });
  EXPECT_EQ(wrong_answers.load(), 0u);

  ProbeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, kRounds);
  EXPECT_EQ(stats.hits + stats.misses, kRounds);
  // Every miss is one physical probe; racing first-misses may duplicate a
  // probe but never lose one, and steady state serves from the cache.
  EXPECT_EQ(db.stats().queries_issued, stats.misses);
  EXPECT_GE(stats.misses, 2u);
  EXPECT_GT(stats.hits, kRounds / 2);
  EXPECT_EQ(cache.size(), 2u);
}

}  // namespace
}  // namespace aimq
