// Runtime ISA dispatch (simd/dispatch.h): name parsing, the downgrade-only
// forcing rule, ForceIsa process-state behavior, and a property test of the
// mask_to_rows emission kernel (random masks -> row ids -> mask round-trip).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "simd/dispatch.h"
#include "util/rng.h"

namespace aimq {
namespace simd {
namespace {

// Every tier whose table this build can serve: KernelsFor falls back to
// scalar on non-x86, so iterating all enum values is always safe, but only
// tiers at or below the detected ISA are exercised with their real tables.
std::vector<Isa> ServableTiers() {
  std::vector<Isa> tiers;
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    if (static_cast<int>(isa) <= static_cast<int>(DetectIsa())) {
      tiers.push_back(isa);
    }
  }
  return tiers;
}

TEST(SimdDispatchTest, ParseIsaAcceptsKnownNames) {
  auto scalar = ParseIsa("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, Isa::kScalar);
  auto sse = ParseIsa("sse4.2");
  ASSERT_TRUE(sse.ok());
  EXPECT_EQ(*sse, Isa::kSse42);
  auto sse_alias = ParseIsa("sse42");
  ASSERT_TRUE(sse_alias.ok());
  EXPECT_EQ(*sse_alias, Isa::kSse42);
  auto avx = ParseIsa("avx2");
  ASSERT_TRUE(avx.ok());
  EXPECT_EQ(*avx, Isa::kAvx2);
}

TEST(SimdDispatchTest, ParseIsaRejectsUnknownNames) {
  EXPECT_FALSE(ParseIsa("").ok());
  EXPECT_FALSE(ParseIsa("native").ok());  // resolved by ForceIsa, not a tier
  EXPECT_FALSE(ParseIsa("avx512").ok());
  EXPECT_FALSE(ParseIsa("SCALAR").ok());
  EXPECT_FALSE(ParseIsa("sse4").ok());
}

TEST(SimdDispatchTest, IsaNameRoundTripsThroughParse) {
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    auto parsed = ParseIsa(IsaName(isa));
    ASSERT_TRUE(parsed.ok()) << IsaName(isa);
    EXPECT_EQ(*parsed, isa);
  }
}

TEST(SimdDispatchTest, ResolveHonorsDowngrades) {
  auto r = ResolveForcedIsa(Isa::kAvx2, "scalar");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Isa::kScalar);
  r = ResolveForcedIsa(Isa::kAvx2, "sse4.2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Isa::kSse42);
  r = ResolveForcedIsa(Isa::kSse42, "scalar");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Isa::kScalar);
}

TEST(SimdDispatchTest, ResolveClampsUpgradesToDetected) {
  // Forcing a tier the CPU lacks must clamp, never fault.
  auto r = ResolveForcedIsa(Isa::kScalar, "avx2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Isa::kScalar);
  r = ResolveForcedIsa(Isa::kSse42, "avx2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Isa::kSse42);
}

TEST(SimdDispatchTest, ResolveNativeYieldsDetected) {
  for (Isa detected : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    auto r = ResolveForcedIsa(detected, "native");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, detected);
  }
}

TEST(SimdDispatchTest, ResolveRejectsUnknownNames) {
  EXPECT_FALSE(ResolveForcedIsa(Isa::kAvx2, "").ok());
  EXPECT_FALSE(ResolveForcedIsa(Isa::kAvx2, "fastest").ok());
  EXPECT_FALSE(ResolveForcedIsa(Isa::kAvx2, "avx512").ok());
}

TEST(SimdDispatchTest, ForceIsaRejectsUnknownAndLeavesActiveUnchanged) {
  const Isa before = ActiveIsa();
  const Status s = ForceIsa("no-such-isa");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ActiveIsa(), before);
}

TEST(SimdDispatchTest, ForceIsaScalarSwitchesDispatchTable) {
  const Isa before = ActiveIsa();
  ASSERT_TRUE(ForceIsa("scalar").ok());
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_EQ(Kernels().isa, Isa::kScalar);
  ASSERT_TRUE(ForceIsa(IsaName(before)).ok());
  EXPECT_EQ(ActiveIsa(), before);
}

TEST(SimdDispatchTest, ForceIsaNativeRestoresDetected) {
  ASSERT_TRUE(ForceIsa("native").ok());
  EXPECT_EQ(ActiveIsa(), DetectIsa());
}

TEST(SimdDispatchTest, KernelsForServesRequestedTierUpToDetected) {
  for (Isa isa : ServableTiers()) {
    EXPECT_EQ(KernelsFor(isa).isa, isa);
  }
  // The scalar table is always real.
  EXPECT_EQ(KernelsFor(Isa::kScalar).isa, Isa::kScalar);
}

// --- mask_to_rows property test -------------------------------------------

// Rebuilds a bitmask from emitted row ids; the round trip must be exact and
// the ids strictly ascending with the base offset applied.
void CheckMaskEmit(const KernelTable& kernels, const std::vector<uint64_t>& mask,
                   uint32_t base_row) {
  std::vector<uint32_t> rows;
  kernels.mask_to_rows(mask.data(), mask.size(), base_row, &rows);

  size_t expected_bits = 0;
  for (uint64_t w : mask) expected_bits += static_cast<size_t>(__builtin_popcountll(w));
  ASSERT_EQ(rows.size(), expected_bits);

  std::vector<uint64_t> rebuilt(mask.size(), 0);
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t r : rows) {
    ASSERT_GE(r, base_row);
    if (!first) {
      ASSERT_GT(r, prev);  // strictly ascending
    }
    prev = r;
    first = false;
    const uint32_t bit = r - base_row;
    ASSERT_LT(bit / 64, rebuilt.size());
    rebuilt[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  EXPECT_EQ(rebuilt, mask);
}

TEST(MaskEmitPropertyTest, RandomMasksRoundTripOnEveryTier) {
  Rng rng(20060808);
  for (const Isa isa : ServableTiers()) {
    const KernelTable& kernels = KernelsFor(isa);
    for (int trial = 0; trial < 200; ++trial) {
      const size_t words = rng.Uniform(6);  // 0..5 words (0..320 bits)
      std::vector<uint64_t> mask(words);
      for (uint64_t& w : mask) {
        // Mix densities: empty, sparse, dense, and full words all occur.
        switch (rng.Uniform(4)) {
          case 0: w = 0; break;
          case 1: w = uint64_t{1} << rng.Uniform(64); break;
          case 2: w = rng.Next() & rng.Next(); break;
          default: w = rng.Next(); break;
        }
      }
      const uint32_t base = static_cast<uint32_t>(rng.Uniform(1u << 20));
      CheckMaskEmit(kernels, mask, base);
    }
  }
}

TEST(MaskEmitPropertyTest, EdgeMasks) {
  for (const Isa isa : ServableTiers()) {
    const KernelTable& kernels = KernelsFor(isa);
    CheckMaskEmit(kernels, {}, 0);                       // no words
    CheckMaskEmit(kernels, {0}, 123);                    // empty word
    CheckMaskEmit(kernels, {~uint64_t{0}}, 0);           // full word
    CheckMaskEmit(kernels, {1}, 0);                      // lowest bit
    CheckMaskEmit(kernels, {uint64_t{1} << 63}, 7);      // highest bit
    CheckMaskEmit(kernels, {0, ~uint64_t{0}, 0, 1}, 64); // interior words
  }
}

TEST(MaskEmitPropertyTest, AppendsWithoutClearing) {
  // The kernel appends to *out — callers rely on accumulating across
  // windows.
  const KernelTable& kernels = KernelsFor(Isa::kScalar);
  std::vector<uint32_t> rows = {7};
  const uint64_t mask = 0b101;
  kernels.mask_to_rows(&mask, 1, 100, &rows);
  EXPECT_EQ(rows, (std::vector<uint32_t>{7, 100, 102}));
}

}  // namespace
}  // namespace simd
}  // namespace aimq
