// ServiceMetrics snapshot tests, including the zero-lookup probe-cache
// regression: an empty cache must render hit_rate 0 inside *valid* JSON (a
// NaN here used to serialize as a bare `nan` token no parser accepts).

#include "service/metrics.h"

#include <string>

#include "gtest/gtest.h"
#include "util/json.h"
#include "webdb/probe_cache.h"

namespace aimq {
namespace {

TEST(ServiceMetricsTest, ZeroLookupCacheSnapshotIsValidJsonWithZeroHitRate) {
  ServiceMetrics metrics;
  ProbeCacheStats stats;  // no lookups yet
  const Json snapshot = metrics.Snapshot(&stats);
  const std::string dump = snapshot.Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << "snapshot did not round-trip: " << dump;
  const Json* cache = parsed->Find("probe_cache");
  ASSERT_NE(cache, nullptr);
  const Json* hit_rate = cache->Find("hit_rate");
  ASSERT_NE(hit_rate, nullptr);
  ASSERT_TRUE(hit_rate->is_number());
  EXPECT_DOUBLE_EQ(hit_rate->AsNum(), 0.0);
}

TEST(ServiceMetricsTest, EmptyRegistrySnapshotRoundTrips) {
  ServiceMetrics metrics;
  const std::string dump = metrics.Snapshot().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << dump;
  EXPECT_EQ(dump.find("nan"), std::string::npos);
  EXPECT_DOUBLE_EQ(parsed->Find("accepted")->AsNum(), 0.0);
  EXPECT_DOUBLE_EQ(parsed->Find("rejection_rate")->AsNum(), 0.0);
}

TEST(ServiceMetricsTest, SnapshotExposesPhaseHistograms) {
  ServiceMetrics metrics;
  metrics.OnPhases(0.001, 0.005, 0.0002);
  metrics.OnPhases(0.002, 0.007, 0.0003);
  const Json snapshot = metrics.Snapshot();
  const Json* phases = snapshot.Find("phases");
  ASSERT_NE(phases, nullptr);
  for (const char* phase : {"base_set", "relax", "rank"}) {
    const Json* h = phases->Find(phase);
    ASSERT_NE(h, nullptr) << phase;
    EXPECT_DOUBLE_EQ(h->Find("count")->AsNum(), 2.0) << phase;
    EXPECT_GT(h->Find("p95_ms")->AsNum(), 0.0) << phase;
  }
  // Phase accessors track the same distributions.
  EXPECT_EQ(metrics.phase_base_set().Snapshot().count, 2u);
  EXPECT_EQ(metrics.phase_relax().Snapshot().count, 2u);
  EXPECT_EQ(metrics.phase_rank().Snapshot().count, 2u);
}

TEST(ServiceMetricsTest, InFlightClampsAtZero) {
  ServiceMetrics metrics;
  metrics.OnCompleted(0.0, 0.001);  // completed without a matching accept
  EXPECT_EQ(metrics.InFlight(), 0u);
  metrics.OnAccepted();
  metrics.OnAccepted();
  EXPECT_EQ(metrics.InFlight(), 1u);
}

}  // namespace
}  // namespace aimq
