#include "ordering/attribute_ordering.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aimq {
namespace {

Schema Abcd() {
  return Schema::Make({{"A", AttrType::kCategorical},
                       {"B", AttrType::kCategorical},
                       {"C", AttrType::kCategorical},
                       {"D", AttrType::kCategorical}})
      .ValueOrDie();
}

// Hand-built dependency set: best key {A}; B strongly depends on A; C weakly;
// D not at all.
MinedDependencies HandDeps() {
  MinedDependencies deps;
  deps.num_attributes = 4;
  deps.keys.push_back(AKey{AttrBit(0), 0.0, true});
  deps.keys.push_back(AKey{AttrBit(0) | AttrBit(1), 0.0, false});
  deps.afds.push_back(Afd{AttrBit(0), 1, 0.05});          // A → B (0.95)
  deps.afds.push_back(Afd{AttrBit(0), 2, 0.40});          // A → C (0.60)
  deps.afds.push_back(Afd{AttrBit(2), 1, 0.30});          // C → B (0.70)
  return deps;
}

TEST(AttributeOrderingTest, PartitionsByBestKey) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ(ordering->best_key().attrs, AttrBit(0));
  EXPECT_TRUE(ordering->importance()[0].deciding);
  EXPECT_FALSE(ordering->importance()[1].deciding);
  EXPECT_FALSE(ordering->importance()[2].deciding);
  EXPECT_FALSE(ordering->importance()[3].deciding);
}

TEST(AttributeOrderingTest, DependentGroupRelaxedBeforeDeciding) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  const auto& order = ordering->relaxation_order();
  ASSERT_EQ(order.size(), 4u);
  // A (the deciding attribute) must come last.
  EXPECT_EQ(order.back(), 0u);
}

TEST(AttributeOrderingTest, WtDependsComputedFromAfdSupports) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  // B: (1−0.05)/1 + (1−0.30)/1 = 1.65; C: (1−0.40)/1 = 0.6; D: 0.
  EXPECT_NEAR(ordering->WtDepends(1), 1.65, 1e-12);
  EXPECT_NEAR(ordering->WtDepends(2), 0.60, 1e-12);
  EXPECT_DOUBLE_EQ(ordering->WtDepends(3), 0.0);
}

TEST(AttributeOrderingTest, DependentsSortedAscendingByWtDepends) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  const auto& order = ordering->relaxation_order();
  // Dependent group sorted ascending: D (0) < C (0.6) < B (1.65), then A.
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 0u);
}

TEST(AttributeOrderingTest, RelaxPositionsAreOneBased) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  EXPECT_EQ(ordering->importance()[3].relax_position, 1u);
  EXPECT_EQ(ordering->importance()[0].relax_position, 4u);
}

TEST(AttributeOrderingTest, WimpSumsToOne) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  double sum = 0.0;
  for (const auto& imp : ordering->importance()) sum += imp.wimp;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (const auto& imp : ordering->importance()) {
    EXPECT_GE(imp.wimp, 0.0);
  }
}

TEST(AttributeOrderingTest, LaterRelaxedDependentWithMoreWeightGetsMoreWimp) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  // B is relaxed later and has more dependence weight than C, so B's Wimp
  // must exceed C's.
  EXPECT_GT(ordering->Wimp(1), ordering->Wimp(2));
}

TEST(AttributeOrderingTest, FailsWithoutKeys) {
  MinedDependencies deps;
  deps.num_attributes = 4;
  auto ordering = AttributeOrdering::Derive(Abcd(), deps);
  EXPECT_FALSE(ordering.ok());
}

TEST(AttributeOrderingTest, FailsOnAttributeCountMismatch) {
  MinedDependencies deps = HandDeps();
  deps.num_attributes = 3;
  EXPECT_FALSE(AttributeOrdering::Derive(Abcd(), deps).ok());
}

TEST(AttributeOrderingTest, ZeroWeightGroupsFallBackToUniform) {
  MinedDependencies deps;
  deps.num_attributes = 4;
  deps.keys.push_back(AKey{AttrBit(0) | AttrBit(1), 0.0, true});
  // No AFDs at all.
  auto ordering = AttributeOrdering::Derive(Abcd(), deps);
  ASSERT_TRUE(ordering.ok());
  double sum = 0.0;
  for (const auto& imp : ordering->importance()) {
    sum += imp.wimp;
    EXPECT_GT(imp.wimp, 0.0);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AttributeOrderingTest, FromPartsRoundTripsDerivedOrdering) {
  auto derived = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(derived.ok());
  auto rebuilt = AttributeOrdering::FromParts(derived->importance(),
                                              derived->best_key());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->relaxation_order(), derived->relaxation_order());
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(rebuilt->Wimp(a), derived->Wimp(a));
  }
}

TEST(AttributeOrderingTest, FromPartsValidatesPositions) {
  auto derived = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(derived.ok());
  // Duplicate relax positions.
  auto imps = derived->importance();
  imps[0].relax_position = imps[1].relax_position;
  EXPECT_FALSE(
      AttributeOrdering::FromParts(imps, derived->best_key()).ok());
  // Out-of-range position.
  imps = derived->importance();
  imps[2].relax_position = 99;
  EXPECT_FALSE(
      AttributeOrdering::FromParts(imps, derived->best_key()).ok());
  // Mis-indexed attribute.
  imps = derived->importance();
  imps[3].attr = 0;
  EXPECT_FALSE(
      AttributeOrdering::FromParts(imps, derived->best_key()).ok());
}

TEST(AttributeOrderingTest, SetWimpValidatesAndNormalizes) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  EXPECT_FALSE(ordering->SetWimp({0.5, 0.5}).ok());          // wrong size
  EXPECT_FALSE(ordering->SetWimp({0.5, -0.1, 0.3, 0.3}).ok());  // negative
  EXPECT_FALSE(ordering->SetWimp({0, 0, 0, 0}).ok());        // all zero
  ASSERT_TRUE(ordering->SetWimp({2, 2, 2, 2}).ok());
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(ordering->Wimp(a), 0.25);
  }
}

TEST(AttributeOrderingTest, ToStringMentionsEveryAttribute) {
  auto ordering = AttributeOrdering::Derive(Abcd(), HandDeps());
  ASSERT_TRUE(ordering.ok());
  std::string s = ordering->ToString(Abcd());
  for (const char* name : {"A", "B", "C", "D"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
  EXPECT_NE(s.find("Best key"), std::string::npos);
}

}  // namespace
}  // namespace aimq
