#include "relation/value_dict.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aimq {
namespace {

TEST(ValueDictTest, CodesAssignedInFirstSeenOrder) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value::Cat("Toyota")), 0u);
  EXPECT_EQ(dict.Intern(Value::Cat("Honda")), 1u);
  EXPECT_EQ(dict.Intern(Value::Cat("Toyota")), 0u);
  EXPECT_EQ(dict.Intern(Value::Cat("Ford")), 2u);
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(0), Value::Cat("Toyota"));
  EXPECT_EQ(dict.value(1), Value::Cat("Honda"));
  EXPECT_EQ(dict.value(2), Value::Cat("Ford"));
}

TEST(ValueDictTest, NullInternsToReservedCodeWithoutEntry) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.Intern(Value::Cat("x")), 0u);
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, EmptyStringIsDistinctFromNull) {
  ValueDict dict;
  ValueId empty = dict.Intern(Value::Cat(""));
  EXPECT_NE(empty, ValueDict::kNullCode);
  EXPECT_EQ(empty, 0u);
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.Lookup(Value::Cat("")), empty);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, LookupNeverMutates) {
  ValueDict dict;
  dict.Intern(Value::Cat("a"));
  EXPECT_EQ(dict.Lookup(Value::Cat("a")), 0u);
  EXPECT_EQ(dict.Lookup(Value::Cat("b")), ValueDict::kAbsentCode);
  EXPECT_EQ(dict.Lookup(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, NumericValuesIntern) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value::Num(10000)), 0u);
  EXPECT_EQ(dict.Intern(Value::Num(12000)), 1u);
  EXPECT_EQ(dict.Intern(Value::Num(10000)), 0u);
  EXPECT_EQ(dict.Lookup(Value::Num(12000)), 1u);
}

TEST(ValueDictTest, NegativeZeroSharesCodeWithZero) {
  // Value equality is IEEE ==, under which -0.0 == 0.0; the dictionary must
  // agree or code equality would diverge from Tuple equality.
  ValueDict dict;
  ValueId zero = dict.Intern(Value::Num(0.0));
  EXPECT_EQ(dict.Intern(Value::Num(-0.0)), zero);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, EachNanOccurrenceGetsAFreshCode) {
  // Value equality is IEEE ==, under which NaN != NaN — including itself.
  // Interning must preserve that: two NaN occurrences may not share a code,
  // otherwise code-vector equality would claim two NaN-bearing tuples equal
  // when Tuple::operator== says they are not.
  const double nan = std::nan("");
  ValueDict dict;
  ValueId first = dict.Intern(Value::Num(nan));
  ValueId second = dict.Intern(Value::Num(nan));
  EXPECT_NE(first, second);
  EXPECT_EQ(dict.size(), 2u);
  // Lookup can never match a NaN either.
  EXPECT_EQ(dict.Lookup(Value::Num(nan)), ValueDict::kAbsentCode);
}

TEST(ValueDictTest, CategoricalAndNumericPayloadsNeverCollide) {
  ValueDict dict;
  ValueId num = dict.Intern(Value::Num(5));
  ValueId cat = dict.Intern(Value::Cat("5"));
  EXPECT_NE(num, cat);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ValueDictTest, ValuesListMatchesCodes) {
  ValueDict dict;
  dict.Intern(Value::Cat("b"));
  dict.Intern(Value::Cat("a"));
  dict.Intern(Value::Cat("c"));
  const std::vector<Value>& values = dict.values();
  ASSERT_EQ(values.size(), 3u);
  for (ValueId c = 0; c < dict.size(); ++c) {
    EXPECT_EQ(values[c], dict.value(c));
    EXPECT_EQ(dict.Lookup(values[c]), c);
  }
}

}  // namespace
}  // namespace aimq
