#include "relation/value_dict.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace aimq {
namespace {

TEST(ValueDictTest, CodesAssignedInFirstSeenOrder) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value::Cat("Toyota")), 0u);
  EXPECT_EQ(dict.Intern(Value::Cat("Honda")), 1u);
  EXPECT_EQ(dict.Intern(Value::Cat("Toyota")), 0u);
  EXPECT_EQ(dict.Intern(Value::Cat("Ford")), 2u);
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(0), Value::Cat("Toyota"));
  EXPECT_EQ(dict.value(1), Value::Cat("Honda"));
  EXPECT_EQ(dict.value(2), Value::Cat("Ford"));
}

TEST(ValueDictTest, NullInternsToReservedCodeWithoutEntry) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_TRUE(dict.Empty());
  EXPECT_EQ(dict.Intern(Value::Cat("x")), 0u);
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, EmptyStringIsDistinctFromNull) {
  ValueDict dict;
  ValueId empty = dict.Intern(Value::Cat(""));
  EXPECT_NE(empty, ValueDict::kNullCode);
  EXPECT_EQ(empty, 0u);
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.Lookup(Value::Cat("")), empty);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, LookupNeverMutates) {
  ValueDict dict;
  dict.Intern(Value::Cat("a"));
  EXPECT_EQ(dict.Lookup(Value::Cat("a")), 0u);
  EXPECT_EQ(dict.Lookup(Value::Cat("b")), ValueDict::kAbsentCode);
  EXPECT_EQ(dict.Lookup(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, NumericValuesIntern) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value::Num(10000)), 0u);
  EXPECT_EQ(dict.Intern(Value::Num(12000)), 1u);
  EXPECT_EQ(dict.Intern(Value::Num(10000)), 0u);
  EXPECT_EQ(dict.Lookup(Value::Num(12000)), 1u);
}

TEST(ValueDictTest, NegativeZeroSharesCodeWithZero) {
  // Value equality is IEEE ==, under which -0.0 == 0.0; the dictionary must
  // agree or code equality would diverge from Tuple equality.
  ValueDict dict;
  ValueId zero = dict.Intern(Value::Num(0.0));
  EXPECT_EQ(dict.Intern(Value::Num(-0.0)), zero);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, EachNanOccurrenceGetsAFreshCode) {
  // Value equality is IEEE ==, under which NaN != NaN — including itself.
  // Interning must preserve that: two NaN occurrences may not share a code,
  // otherwise code-vector equality would claim two NaN-bearing tuples equal
  // when Tuple::operator== says they are not.
  const double nan = std::nan("");
  ValueDict dict;
  ValueId first = dict.Intern(Value::Num(nan));
  ValueId second = dict.Intern(Value::Num(nan));
  EXPECT_NE(first, second);
  EXPECT_EQ(dict.size(), 2u);
  // Lookup can never match a NaN either.
  EXPECT_EQ(dict.Lookup(Value::Num(nan)), ValueDict::kAbsentCode);
}

TEST(ValueDictTest, CategoricalAndNumericPayloadsNeverCollide) {
  ValueDict dict;
  ValueId num = dict.Intern(Value::Num(5));
  ValueId cat = dict.Intern(Value::Cat("5"));
  EXPECT_NE(num, cat);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ValueDictTest, ValuesListMatchesCodes) {
  ValueDict dict;
  dict.Intern(Value::Cat("b"));
  dict.Intern(Value::Cat("a"));
  dict.Intern(Value::Cat("c"));
  const std::vector<Value>& values = dict.values();
  ASSERT_EQ(values.size(), 3u);
  for (ValueId c = 0; c < dict.size(); ++c) {
    EXPECT_EQ(values[c], dict.value(c));
    EXPECT_EQ(dict.Lookup(values[c]), c);
  }
}

// --- Append-only invariants (the foundation of live ingest) ---

TEST(ValueDictAppendOnlyTest, CodesStableAcrossAppends) {
  ValueDict dict;
  std::vector<ValueId> before;
  for (int i = 0; i < 64; ++i) {
    before.push_back(dict.Intern(Value::Cat("v" + std::to_string(i))));
  }
  // Grow the dictionary substantially; every previously assigned code must
  // keep both its numeric value and its meaning.
  for (int i = 0; i < 512; ++i) {
    dict.Intern(Value::Num(i * 1.5));
  }
  for (int i = 0; i < 64; ++i) {
    const Value v = Value::Cat("v" + std::to_string(i));
    EXPECT_EQ(dict.Lookup(v), before[i]);
    EXPECT_EQ(dict.value(before[i]), v);
  }
}

TEST(ValueDictAppendOnlyTest, ReservedCodesSurviveGrowth) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  for (int i = 0; i < 1000; ++i) {
    const ValueId code = dict.Intern(Value::Num(i));
    EXPECT_NE(code, ValueDict::kNullCode);
    EXPECT_NE(code, ValueDict::kAbsentCode);
  }
  EXPECT_EQ(dict.Intern(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.Lookup(Value()), ValueDict::kNullCode);
  EXPECT_EQ(dict.Lookup(Value::Cat("never seen")), ValueDict::kAbsentCode);
}

TEST(ValueDictAppendOnlyTest, SerializationIsPrefixClosedAcrossVersions) {
  ValueDict dict;
  dict.Intern(Value::Cat("Toyota"));
  dict.Intern(Value::Num(-0.0));
  dict.Intern(Value::Cat(""));
  std::string at_v;
  dict.SerializeTo(&at_v);

  // Version v+k adds values; codes of v are untouched, and v's rendering is
  // reproduced exactly by re-serializing the prefix of the grown dictionary.
  dict.Intern(Value::Cat("Honda"));
  dict.Intern(Value::Num(9500));
  std::string at_vk;
  dict.SerializeTo(&at_vk);
  EXPECT_NE(at_v, at_vk);

  auto old_dict = ValueDict::Deserialize(at_v);
  ASSERT_TRUE(old_dict.ok());
  EXPECT_EQ(old_dict->size(), 3u);
  // Extending the deserialized old dictionary with the delta values
  // reproduces the live dictionary: same codes, same serialization.
  EXPECT_EQ(old_dict->Intern(Value::Cat("Honda")), 3u);
  EXPECT_EQ(old_dict->Intern(Value::Num(9500)), 4u);
  std::string rebuilt;
  old_dict->SerializeTo(&rebuilt);
  EXPECT_EQ(rebuilt, at_vk);
}

TEST(ValueDictAppendOnlyTest, DictFromVersionVDecodesRowsIngestedLater) {
  // A dictionary serialized at version v must decode code columns written at
  // v — and, after interning the delta, columns written at v+k.
  ValueDict live;
  std::vector<ValueId> column_v;
  for (const char* s : {"a", "b", "a", "c"}) {
    column_v.push_back(live.Intern(Value::Cat(s)));
  }
  std::string bytes_v;
  live.SerializeTo(&bytes_v);

  std::vector<ValueId> column_vk;
  for (const char* s : {"c", "d", "e", "a"}) {
    column_vk.push_back(live.Intern(Value::Cat(s)));
  }

  auto restored = ValueDict::Deserialize(bytes_v);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < column_v.size(); ++i) {
    EXPECT_EQ(restored->value(column_v[i]), live.value(column_v[i]));
  }
  // Replay the delta rows through the restored dictionary: identical codes.
  for (size_t i = 0; i < column_vk.size(); ++i) {
    const Value& v = live.value(column_vk[i]);
    EXPECT_EQ(restored->Intern(v), column_vk[i]);
  }
}

TEST(ValueDictAppendOnlyTest, SerializationRoundTripsNanAndNegativeZero) {
  const double nan = std::nan("");
  ValueDict dict;
  dict.Intern(Value::Num(nan));
  dict.Intern(Value::Num(nan));
  dict.Intern(Value::Num(-0.0));
  std::string bytes;
  dict.SerializeTo(&bytes);
  auto restored = ValueDict::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 3u);
  EXPECT_TRUE(std::isnan(restored->value(0).AsNum()));
  EXPECT_TRUE(std::isnan(restored->value(1).AsNum()));
  EXPECT_TRUE(std::signbit(restored->value(2).AsNum()));
  // NaN occurrences keep getting fresh codes after deserialization.
  EXPECT_EQ(restored->Intern(Value::Num(nan)), 3u);
  // -0.0 still shares its code with 0.0.
  EXPECT_EQ(restored->Intern(Value::Num(0.0)), 2u);
}

}  // namespace
}  // namespace aimq
