// Serving-layer integration of the shard + tenancy work: a sharded service
// answers bit-identically to the unsharded engine, per-tenant quotas reject
// deterministically, stride scheduling drains tenants by weight in a
// deterministic total order, and the shard/tenant-labelled metric families
// surface in both StatsJson and the Prometheus exposition text.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/cardb.h"
#include "service/prometheus.h"

namespace aimq {
namespace {

// A source whose probes block on a gate until released — pins the single
// worker inside one request so a test can shape the queue deterministically.
class GatedDb : public WebDatabase {
 public:
  GatedDb(std::string name, Relation data)
      : WebDatabase(std::move(name), std::move(data)) {}

  Result<std::vector<uint32_t>> ExecuteRows(
      const SelectionQuery& query) const override {
    ++arrivals_;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    }
    return WebDatabase::ExecuteRows(query);
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

  int arrivals() const { return arrivals_.load(); }

 private:
  mutable std::atomic<int> arrivals_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool released_ = false;  // guarded by mu_
};

ImpreciseQuery ModelQuery(const std::string& model) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat(model));
  return q;
}

bool WaitFor(const std::function<bool()>& done) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!done()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class ShardedServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    data_ = new Relation(CarDbGenerator(spec).Generate());
    db_ = new WebDatabase("CarDB", *data_);
    options_ = new AimqOptions();
    options_->collector.sample_size = 300;
    options_->tsim = 0.4;
    options_->top_k = 10;
    options_->num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete db_;
    delete data_;
    knowledge_ = nullptr;
    options_ = nullptr;
    db_ = nullptr;
    data_ = nullptr;
  }

  static Relation* data_;
  static WebDatabase* db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

Relation* ShardedServiceTest::data_ = nullptr;
WebDatabase* ShardedServiceTest::db_ = nullptr;
AimqOptions* ShardedServiceTest::options_ = nullptr;
MinedKnowledge* ShardedServiceTest::knowledge_ = nullptr;

// Tenant admission/fairness cases share the fixture (same CarDB/knowledge);
// a distinct suite name keeps them separately selectable in CI.
using TenantAdmissionTest = ShardedServiceTest;

TEST_F(ShardedServiceTest, ShardedServiceMatchesUnshardedEngine) {
  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.queue_depth = 64;
  sopts.num_shards = 4;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.shard_build_status().ok());
  ASSERT_EQ(service.num_shards(), 4u);
  ASSERT_TRUE(service.Start().ok());

  AimqOptions serial = *options_;
  serial.num_threads = 1;
  AimqEngine reference(db_, *knowledge_, serial);

  for (const char* model : {"Camry", "Civic", "Altima", "Outback"}) {
    auto served = service.Execute(ModelQuery(model));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto direct = reference.Answer(ModelQuery(model));
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(served->answers.size(), direct->size()) << model;
    for (size_t i = 0; i < direct->size(); ++i) {
      EXPECT_EQ(served->answers[i].tuple, (*direct)[i].tuple);
      EXPECT_EQ(served->answers[i].similarity, (*direct)[i].similarity);
    }
  }
  service.Stop();
}

TEST_F(ShardedServiceTest, StatsJsonReportsShardAndCoalescingCounters) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.num_shards = 3;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Execute(ModelQuery("Camry")).ok());
  service.Stop();

  ASSERT_EQ(service.ShardStats().size(), 3u);
  const std::string stats = service.StatsJson().Dump();
  EXPECT_NE(stats.find("\"shards\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"coalesced\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"tenants\""), std::string::npos) << stats;
}

TEST_F(ShardedServiceTest, PrometheusTextExposesShardAndTenantFamilies) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.num_shards = 2;
  AimqService service(db_, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Execute(ModelQuery("Camry"), 0, 0, "acme").ok());
  service.Stop();

  const std::vector<ShardProbeSnapshot> shards = service.ShardStats();
  const ProbeCacheStats cache = service.probe_cache()->stats();
  const std::string text =
      PrometheusMetricsText(service.metrics(), &cache, &shards);
  EXPECT_NE(text.find("aimq_shard_probes_total{shard=\"0\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("aimq_shard_probes_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("aimq_shard_tuples_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("aimq_tenant_accepted_total{tenant=\"acme\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("aimq_tenant_completed_total{tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(text.find("aimq_probe_cache_coalesced_total"), std::string::npos);
}

TEST_F(TenantAdmissionTest, QuotaRejectsOnlyTheNoisyTenant) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 64;
  sopts.tenant_quota = 2;
  GatedDb gated("CarDB", *data_);
  AimqService service(&gated, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());

  std::atomic<int> completions{0};
  const auto done = [&](Result<QueryResponse> r) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    ++completions;
  };

  // Pin the lone worker inside a probe, then shape the queue underneath it.
  ASSERT_TRUE(service.Submit(ModelQuery("Camry"), done, 0, 0, "noisy").ok());
  ASSERT_TRUE(WaitFor([&] { return gated.arrivals() >= 1; }));

  ASSERT_TRUE(service.Submit(ModelQuery("Civic"), done, 0, 0, "noisy").ok());
  ASSERT_TRUE(service.Submit(ModelQuery("Altima"), done, 0, 0, "noisy").ok());
  const Status rejected =
      service.Submit(ModelQuery("Accord"), done, 0, 0, "noisy");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.ToString().find("tenant quota exceeded"),
            std::string::npos)
      << rejected.ToString();
  EXPECT_NE(rejected.ToString().find("noisy"), std::string::npos);

  // The quota is per tenant: a quiet tenant still gets in.
  EXPECT_TRUE(service.Submit(ModelQuery("Accord"), done, 0, 0, "quiet").ok());

  gated.Release();
  service.Stop();  // drains the four accepted requests
  EXPECT_EQ(completions.load(), 4);

  const auto tenants = service.metrics().TenantSnapshot();
  ASSERT_EQ(tenants.count("noisy"), 1u);
  EXPECT_EQ(tenants.at("noisy").accepted, 3u);
  EXPECT_EQ(tenants.at("noisy").rejected, 1u);
  EXPECT_EQ(tenants.at("noisy").completed, 3u);
  EXPECT_EQ(tenants.at("quiet").accepted, 1u);
  EXPECT_EQ(tenants.at("quiet").rejected, 0u);
}

TEST_F(TenantAdmissionTest, StrideSchedulingDrainsTenantsByWeight) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 64;
  sopts.tenant_weights["btenant"] = 2.0;  // drains twice as fast as weight 1
  GatedDb gated("CarDB", *data_);
  AimqService service(&gated, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());

  std::mutex order_mu;
  std::vector<std::string> order;
  const auto record = [&](const std::string& tenant) {
    return [&, tenant](Result<QueryResponse> r) {
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tenant);
    };
  };

  // Pin the worker so the six follow-ups queue while it is busy; the single
  // worker then completes them in exactly the stride-schedule dequeue order.
  ASSERT_TRUE(
      service.Submit(ModelQuery("Camry"), record("pin"), 0, 0, "pin").ok());
  ASSERT_TRUE(WaitFor([&] { return gated.arrivals() >= 1; }));
  for (const char* tenant :
       {"atenant", "atenant", "btenant", "btenant", "btenant", "btenant"}) {
    ASSERT_TRUE(
        service.Submit(ModelQuery("Civic"), record(tenant), 0, 0, tenant)
            .ok());
  }

  gated.Release();
  service.Stop();

  // Both tenants join at the same pass level; "atenant" wins the first tie
  // on name, then weight 2 lets "btenant" dequeue twice per "atenant" turn.
  const std::vector<std::string> expected = {
      "pin",     "atenant", "btenant", "btenant",
      "atenant", "btenant", "btenant"};
  EXPECT_EQ(order, expected);
}

TEST_F(TenantAdmissionTest, DefaultTenantPreservesFifoOrder) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 64;
  GatedDb gated("CarDB", *data_);
  AimqService service(&gated, *knowledge_, *options_, sopts);
  ASSERT_TRUE(service.Start().ok());

  std::mutex order_mu;
  std::vector<int> order;
  const auto record = [&](int i) {
    return [&, i](Result<QueryResponse> r) {
      EXPECT_TRUE(r.ok());
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    };
  };
  ASSERT_TRUE(service.Submit(ModelQuery("Camry"), record(0)).ok());
  ASSERT_TRUE(WaitFor([&] { return gated.arrivals() >= 1; }));
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(service.Submit(ModelQuery("Civic"), record(i)).ok());
  }
  gated.Release();
  service.Stop();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace aimq
