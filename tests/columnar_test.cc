// ColumnarRelation tests: encode/decode round-trips (including the
// CSV -> Relation -> encode -> decode property over generated CarDB and
// CensusDB samples), null/empty-string dictionary edges, canonical-row
// identity, and the DistinctValues first-seen-order contract now served
// straight from the dictionaries.

#include "relation/columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "datagen/cardb.h"
#include "datagen/censusdb.h"
#include "relation/relation.h"

namespace aimq {
namespace {

Schema MixedSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

TEST(ColumnarTest, RoundTripsEveryTuple) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Ford"), Value::Num(9000)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Kia"), Value()})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(-1.5)})).ok());
  auto cols = r.columnar();
  ASSERT_EQ(cols->NumRows(), 3u);
  for (size_t row = 0; row < r.NumTuples(); ++row) {
    EXPECT_TRUE(cols->MaterializeTuple(row) == r.tuple(row)) << "row " << row;
  }
}

TEST(ColumnarTest, NullAndEmptyStringStayDistinct) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat(""), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(1)})).ok());
  auto cols = r.columnar();
  EXPECT_NE(cols->codes(0)[0], ValueDict::kNullCode);
  EXPECT_EQ(cols->codes(0)[1], ValueDict::kNullCode);
  EXPECT_TRUE(cols->is_null(0, 1));
  EXPECT_FALSE(cols->is_null(0, 0));
  EXPECT_EQ(cols->ValueAt(0, 0), Value::Cat(""));
  EXPECT_TRUE(cols->ValueAt(0, 1).is_null());
  // The empty string is a real dictionary entry; null is not.
  EXPECT_EQ(cols->dict(0).size(), 1u);
}

TEST(ColumnarTest, NumericColumnCarriesRawDoubles) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(42.5)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  auto cols = r.columnar();
  ASSERT_EQ(cols->nums(1).size(), 2u);
  EXPECT_EQ(cols->nums(1)[0], 42.5);
  // Nulls hold 0.0 in the raw column; nullness lives in the code column.
  EXPECT_EQ(cols->nums(1)[1], 0.0);
  EXPECT_TRUE(cols->is_null(1, 1));
  // Categorical attributes have no raw column.
  EXPECT_TRUE(cols->nums(0).empty());
}

TEST(ColumnarTest, CanonicalRowGroupsEqualTuples) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("b"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  auto cols = r.columnar();
  EXPECT_EQ(cols->CanonicalRow(0), 0u);
  EXPECT_EQ(cols->CanonicalRow(1), 1u);
  EXPECT_EQ(cols->CanonicalRow(2), 0u);  // duplicate of row 0
  EXPECT_EQ(cols->CanonicalRow(3), 3u);
  EXPECT_EQ(cols->CanonicalRow(4), 3u);  // null columns compare equal too
}

TEST(ColumnarTest, NanRowsAreNeverEqual) {
  // Tuple equality uses Value equality, under which NaN != NaN; canonical
  // rows must not merge two NaN-bearing rows.
  Relation r(MixedSchema());
  const double nan = std::nan("");
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(nan)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(nan)})).ok());
  auto cols = r.columnar();
  EXPECT_EQ(cols->CanonicalRow(0), 0u);
  EXPECT_EQ(cols->CanonicalRow(1), 1u);
  EXPECT_FALSE(r.tuple(0) == r.tuple(1));
}

TEST(ColumnarTest, SnapshotIsCachedUntilMutation) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  auto first = r.columnar();
  EXPECT_EQ(first.get(), r.columnar().get());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("b"), Value::Num(2)})).ok());
  auto second = r.columnar();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->NumRows(), 1u);
  EXPECT_EQ(second->NumRows(), 2u);
}

// Regression: DistinctValues is now served from the dictionary; its contract
// — distinct non-null values in first-seen order — must not drift.
TEST(ColumnarTest, DistinctValuesKeepFirstSeenOrder) {
  Relation r(MixedSchema());
  auto add = [&](const char* make, double price) {
    ASSERT_TRUE(
        r.Append(Tuple({Value::Cat(make), Value::Num(price)})).ok());
  };
  add("Zebra", 3);
  add("Apple", 1);
  add("Zebra", 2);
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(7)})).ok());
  add("Mango", 3);
  add("Apple", 9);

  std::vector<Value> distinct = r.DistinctValues(0);
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value::Cat("Zebra"));  // first-seen, NOT sorted
  EXPECT_EQ(distinct[1], Value::Cat("Apple"));
  EXPECT_EQ(distinct[2], Value::Cat("Mango"));
  EXPECT_EQ(r.DistinctCount(0), 3u);
  // Numeric attributes follow the same contract (nulls excluded).
  std::vector<Value> prices = r.DistinctValues(1);
  ASSERT_EQ(prices.size(), 5u);
  EXPECT_EQ(prices[0], Value::Num(3));
  EXPECT_EQ(prices[1], Value::Num(1));
  EXPECT_EQ(prices[2], Value::Num(2));
  EXPECT_EQ(prices[3], Value::Num(7));
  EXPECT_EQ(prices[4], Value::Num(9));
}

// The satellite property test: dataset -> CSV -> Relation -> columnar encode
// -> decode reproduces every tuple of the re-read relation, and (because the
// generators emit integral numerics, which render losslessly) the re-read
// relation equals the original one tuple-for-tuple.
void RoundTripThroughCsvAndColumnar(const Relation& original,
                                    const std::string& tag) {
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_columnar_" + tag + "_" + std::to_string(::getpid()) +
               ".csv");
  ASSERT_TRUE(original.WriteCsv(path.string()).ok());
  auto reread = Relation::ReadCsv(path.string(), original.schema());
  std::filesystem::remove(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->NumTuples(), original.NumTuples());

  auto cols = reread->columnar();
  ASSERT_EQ(cols->NumRows(), reread->NumTuples());
  for (size_t row = 0; row < reread->NumTuples(); ++row) {
    ASSERT_TRUE(cols->MaterializeTuple(row) == reread->tuple(row))
        << tag << " row " << row << " decode mismatch";
    ASSERT_TRUE(reread->tuple(row) == original.tuple(row))
        << tag << " row " << row << " CSV mismatch";
  }
}

TEST(ColumnarTest, CarDbCsvEncodeDecodeRoundTrip) {
  CarDbSpec spec;
  spec.num_tuples = 2000;
  spec.seed = 7;
  RoundTripThroughCsvAndColumnar(CarDbGenerator(spec).Generate(), "cardb");
}

TEST(ColumnarTest, CensusDbCsvEncodeDecodeRoundTrip) {
  CensusDbSpec spec;
  spec.num_tuples = 2000;
  spec.seed = 7;
  RoundTripThroughCsvAndColumnar(CensusDbGenerator(spec).Generate().relation,
                                 "censusdb");
}

// --- Incremental snapshot production (ColumnarRelation::Extend) ---

// Asserts the two snapshots are bit-identical: same dictionaries (codes and
// serialized bytes), same code columns, same raw numbers, same canonical
// rows, same materialized tuples.
void ExpectSnapshotsIdentical(const ColumnarRelation& a,
                              const ColumnarRelation& b) {
  ASSERT_EQ(a.NumRows(), b.NumRows());
  ASSERT_EQ(a.NumAttributes(), b.NumAttributes());
  for (size_t attr = 0; attr < a.NumAttributes(); ++attr) {
    std::string bytes_a, bytes_b;
    a.dict(attr).SerializeTo(&bytes_a);
    b.dict(attr).SerializeTo(&bytes_b);
    EXPECT_EQ(bytes_a, bytes_b) << "dict of attr " << attr;
    for (size_t row = 0; row < a.NumRows(); ++row) {
      ASSERT_EQ(a.CodeAt(attr, row), b.CodeAt(attr, row))
          << "attr " << attr << " row " << row;
      if (a.schema().attribute(attr).type == AttrType::kNumeric) {
        const double na = a.NumAt(attr, row);
        const double nb = b.NumAt(attr, row);
        ASSERT_TRUE(na == nb || (std::isnan(na) && std::isnan(nb)))
            << "attr " << attr << " row " << row;
      }
    }
  }
  for (uint32_t row = 0; row < a.NumRows(); ++row) {
    ASSERT_EQ(a.CanonicalRow(row), b.CanonicalRow(row)) << "row " << row;
    ASSERT_TRUE(a.MaterializeTuple(row) == b.MaterializeTuple(row))
        << "row " << row;
  }
}

TEST(ColumnarExtendTest, ExtendIsBitIdenticalToFromScratchEncode) {
  CarDbSpec spec;
  spec.num_tuples = 300;
  spec.seed = 23;
  Relation all = CarDbGenerator(spec).Generate();

  // Base = first 200 rows; delta = the remaining 100.
  Relation base(all.schema());
  std::vector<Tuple> delta;
  for (size_t i = 0; i < all.NumTuples(); ++i) {
    if (i < 200) {
      ASSERT_TRUE(base.Append(all.tuple(i)).ok());
    } else {
      delta.push_back(all.tuple(i));
    }
  }

  auto extended = ColumnarRelation::Extend(*base.columnar(), delta, 1);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ((*extended)->snapshot_version(), 1u);
  EXPECT_NE((*extended)->snapshot_uid(), base.columnar()->snapshot_uid());
  ExpectSnapshotsIdentical(**extended, *all.columnar());
}

TEST(ColumnarExtendTest, ChainedExtendsMatchOneFromScratchEncode) {
  Relation all(MixedSchema());
  std::vector<std::vector<Tuple>> deltas;
  const char* makes[] = {"Ford", "Kia", "", "Ford"};
  for (int d = 0; d < 4; ++d) {
    std::vector<Tuple> delta;
    for (int i = 0; i < 5; ++i) {
      Tuple t({i % 3 == 0 ? Value() : Value::Cat(makes[d]),
               i % 2 == 0 ? Value::Num(1000 * d + i) : Value()});
      ASSERT_TRUE(all.Append(t).ok());
      delta.push_back(std::move(t));
    }
    deltas.push_back(std::move(delta));
  }

  std::shared_ptr<const ColumnarRelation> snap =
      Relation(MixedSchema()).columnar();
  for (size_t d = 0; d < deltas.size(); ++d) {
    auto next = ColumnarRelation::Extend(*snap, deltas[d], d + 1);
    ASSERT_TRUE(next.ok()) << "delta " << d;
    snap = *next;
    EXPECT_EQ(snap->snapshot_version(), d + 1);
  }
  ExpectSnapshotsIdentical(*snap, *all.columnar());
}

TEST(ColumnarExtendTest, EmptyDeltaAdvancesOnlyTheVersion) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Ford"), Value::Num(1)})).ok());
  auto extended = ColumnarRelation::Extend(*r.columnar(), {}, 7);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ((*extended)->snapshot_version(), 7u);
  ExpectSnapshotsIdentical(**extended, *r.columnar());
}

TEST(ColumnarExtendTest, ExtendValidatesDeltaRows) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Ford"), Value::Num(1)})).ok());
  auto cols = r.columnar();
  // Wrong arity.
  EXPECT_FALSE(
      ColumnarRelation::Extend(*cols, {Tuple({Value::Cat("x")})}, 1).ok());
  // Type mismatch: categorical value in the numeric column.
  EXPECT_FALSE(ColumnarRelation::Extend(
                   *cols, {Tuple({Value::Cat("x"), Value::Cat("y")})}, 1)
                   .ok());
  // All-or-nothing: the base snapshot is untouched either way.
  EXPECT_EQ(cols->NumRows(), 1u);
}

TEST(ColumnarExtendTest, ExtendFromPackedBaseMatchesPlainEncode) {
  CarDbSpec spec;
  spec.num_tuples = 150;
  spec.seed = 5;
  Relation all = CarDbGenerator(spec).Generate();

  ColumnarBuilder::Options opts;
  opts.store.block_size = 64;  // several blocks
  auto builder = ColumnarBuilder::Create(all.schema(), opts);
  ASSERT_TRUE(builder.ok());
  std::vector<Tuple> delta;
  for (size_t i = 0; i < all.NumTuples(); ++i) {
    if (i < 100) {
      ASSERT_TRUE((*builder)->AppendRow(all.tuple(i)).ok());
    } else {
      delta.push_back(all.tuple(i));
    }
  }
  auto packed_base = (*builder)->Finish();
  ASSERT_TRUE(packed_base.ok());
  ASSERT_TRUE((*packed_base)->packed());

  auto extended = ColumnarRelation::Extend(**packed_base, delta, 3);
  ASSERT_TRUE(extended.ok());
  EXPECT_FALSE((*extended)->packed());  // Extend produces plain snapshots
  ExpectSnapshotsIdentical(**extended, *all.columnar());
}

}  // namespace
}  // namespace aimq
