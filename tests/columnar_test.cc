// ColumnarRelation tests: encode/decode round-trips (including the
// CSV -> Relation -> encode -> decode property over generated CarDB and
// CensusDB samples), null/empty-string dictionary edges, canonical-row
// identity, and the DistinctValues first-seen-order contract now served
// straight from the dictionaries.

#include "relation/columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "datagen/cardb.h"
#include "datagen/censusdb.h"
#include "relation/relation.h"

namespace aimq {
namespace {

Schema MixedSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

TEST(ColumnarTest, RoundTripsEveryTuple) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Ford"), Value::Num(9000)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("Kia"), Value()})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(-1.5)})).ok());
  auto cols = r.columnar();
  ASSERT_EQ(cols->NumRows(), 3u);
  for (size_t row = 0; row < r.NumTuples(); ++row) {
    EXPECT_TRUE(cols->MaterializeTuple(row) == r.tuple(row)) << "row " << row;
  }
}

TEST(ColumnarTest, NullAndEmptyStringStayDistinct) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat(""), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(1)})).ok());
  auto cols = r.columnar();
  EXPECT_NE(cols->codes(0)[0], ValueDict::kNullCode);
  EXPECT_EQ(cols->codes(0)[1], ValueDict::kNullCode);
  EXPECT_TRUE(cols->is_null(0, 1));
  EXPECT_FALSE(cols->is_null(0, 0));
  EXPECT_EQ(cols->ValueAt(0, 0), Value::Cat(""));
  EXPECT_TRUE(cols->ValueAt(0, 1).is_null());
  // The empty string is a real dictionary entry; null is not.
  EXPECT_EQ(cols->dict(0).size(), 1u);
}

TEST(ColumnarTest, NumericColumnCarriesRawDoubles) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(42.5)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  auto cols = r.columnar();
  ASSERT_EQ(cols->nums(1).size(), 2u);
  EXPECT_EQ(cols->nums(1)[0], 42.5);
  // Nulls hold 0.0 in the raw column; nullness lives in the code column.
  EXPECT_EQ(cols->nums(1)[1], 0.0);
  EXPECT_TRUE(cols->is_null(1, 1));
  // Categorical attributes have no raw column.
  EXPECT_TRUE(cols->nums(0).empty());
}

TEST(ColumnarTest, CanonicalRowGroupsEqualTuples) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("b"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value()})).ok());
  auto cols = r.columnar();
  EXPECT_EQ(cols->CanonicalRow(0), 0u);
  EXPECT_EQ(cols->CanonicalRow(1), 1u);
  EXPECT_EQ(cols->CanonicalRow(2), 0u);  // duplicate of row 0
  EXPECT_EQ(cols->CanonicalRow(3), 3u);
  EXPECT_EQ(cols->CanonicalRow(4), 3u);  // null columns compare equal too
}

TEST(ColumnarTest, NanRowsAreNeverEqual) {
  // Tuple equality uses Value equality, under which NaN != NaN; canonical
  // rows must not merge two NaN-bearing rows.
  Relation r(MixedSchema());
  const double nan = std::nan("");
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(nan)})).ok());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(nan)})).ok());
  auto cols = r.columnar();
  EXPECT_EQ(cols->CanonicalRow(0), 0u);
  EXPECT_EQ(cols->CanonicalRow(1), 1u);
  EXPECT_FALSE(r.tuple(0) == r.tuple(1));
}

TEST(ColumnarTest, SnapshotIsCachedUntilMutation) {
  Relation r(MixedSchema());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("a"), Value::Num(1)})).ok());
  auto first = r.columnar();
  EXPECT_EQ(first.get(), r.columnar().get());
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("b"), Value::Num(2)})).ok());
  auto second = r.columnar();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(first->NumRows(), 1u);
  EXPECT_EQ(second->NumRows(), 2u);
}

// Regression: DistinctValues is now served from the dictionary; its contract
// — distinct non-null values in first-seen order — must not drift.
TEST(ColumnarTest, DistinctValuesKeepFirstSeenOrder) {
  Relation r(MixedSchema());
  auto add = [&](const char* make, double price) {
    ASSERT_TRUE(
        r.Append(Tuple({Value::Cat(make), Value::Num(price)})).ok());
  };
  add("Zebra", 3);
  add("Apple", 1);
  add("Zebra", 2);
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(7)})).ok());
  add("Mango", 3);
  add("Apple", 9);

  std::vector<Value> distinct = r.DistinctValues(0);
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value::Cat("Zebra"));  // first-seen, NOT sorted
  EXPECT_EQ(distinct[1], Value::Cat("Apple"));
  EXPECT_EQ(distinct[2], Value::Cat("Mango"));
  EXPECT_EQ(r.DistinctCount(0), 3u);
  // Numeric attributes follow the same contract (nulls excluded).
  std::vector<Value> prices = r.DistinctValues(1);
  ASSERT_EQ(prices.size(), 5u);
  EXPECT_EQ(prices[0], Value::Num(3));
  EXPECT_EQ(prices[1], Value::Num(1));
  EXPECT_EQ(prices[2], Value::Num(2));
  EXPECT_EQ(prices[3], Value::Num(7));
  EXPECT_EQ(prices[4], Value::Num(9));
}

// The satellite property test: dataset -> CSV -> Relation -> columnar encode
// -> decode reproduces every tuple of the re-read relation, and (because the
// generators emit integral numerics, which render losslessly) the re-read
// relation equals the original one tuple-for-tuple.
void RoundTripThroughCsvAndColumnar(const Relation& original,
                                    const std::string& tag) {
  auto path = std::filesystem::temp_directory_path() /
              ("aimq_columnar_" + tag + "_" + std::to_string(::getpid()) +
               ".csv");
  ASSERT_TRUE(original.WriteCsv(path.string()).ok());
  auto reread = Relation::ReadCsv(path.string(), original.schema());
  std::filesystem::remove(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  ASSERT_EQ(reread->NumTuples(), original.NumTuples());

  auto cols = reread->columnar();
  ASSERT_EQ(cols->NumRows(), reread->NumTuples());
  for (size_t row = 0; row < reread->NumTuples(); ++row) {
    ASSERT_TRUE(cols->MaterializeTuple(row) == reread->tuple(row))
        << tag << " row " << row << " decode mismatch";
    ASSERT_TRUE(reread->tuple(row) == original.tuple(row))
        << tag << " row " << row << " CSV mismatch";
  }
}

TEST(ColumnarTest, CarDbCsvEncodeDecodeRoundTrip) {
  CarDbSpec spec;
  spec.num_tuples = 2000;
  spec.seed = 7;
  RoundTripThroughCsvAndColumnar(CarDbGenerator(spec).Generate(), "cardb");
}

TEST(ColumnarTest, CensusDbCsvEncodeDecodeRoundTrip) {
  CensusDbSpec spec;
  spec.num_tuples = 2000;
  spec.seed = 7;
  RoundTripThroughCsvAndColumnar(CensusDbGenerator(spec).Generate().relation,
                                 "censusdb");
}

}  // namespace
}  // namespace aimq
