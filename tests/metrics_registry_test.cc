// MetricsRegistry tests: instrument registration and stability, collector
// merge semantics, Prometheus rendering (HELP/TYPE grammar, label escaping,
// cumulative buckets), JSON snapshots, and snapshot-under-concurrent-
// increment safety.

#include "obs/metrics_registry.h"

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace aimq {
namespace obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

bool HasLine(const std::string& text, const std::string& exact) {
  for (const std::string& line : Lines(text)) {
    if (line == exact) return true;
  }
  return false;
}

TEST(MetricsRegistryTest, CounterRegistersAndRenders) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* c =
      registry.GetCounter("test_requests_total", "Requests seen.");
  c->Inc();
  c->Inc(41);
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(text, "# HELP test_requests_total Requests seen."));
  EXPECT_TRUE(HasLine(text, "# TYPE test_requests_total counter"));
  EXPECT_TRUE(HasLine(text, "test_requests_total 42"));
}

TEST(MetricsRegistryTest, ReRegistrationReturnsTheSameInstrument) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* a = registry.GetCounter("c_total", "help");
  MetricsRegistry::Counter* b = registry.GetCounter("c_total", "other help");
  EXPECT_EQ(a, b);
  MetricsRegistry::Counter* labelled =
      registry.GetCounter("c_total", "help", {{"k", "v"}});
  EXPECT_NE(a, labelled);
  EXPECT_EQ(labelled, registry.GetCounter("c_total", "help", {{"k", "v"}}));
}

TEST(MetricsRegistryTest, KindMismatchYieldsDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("dual_total", "as counter")->Inc(7);
  // Same name, different kind: the caller still gets a usable gauge, but it
  // never renders (the family keeps its first kind).
  MetricsRegistry::Gauge* g = registry.GetGauge("dual_total", "as gauge");
  ASSERT_NE(g, nullptr);
  g->Set(3.0);
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(text, "# TYPE dual_total counter"));
  EXPECT_TRUE(HasLine(text, "dual_total 7"));
  EXPECT_FALSE(HasLine(text, "dual_total 3"));
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry
      .GetCounter("tenant_total", "by tenant",
                  {{"tenant", "acme \"prod\"\\eu\nwest"}})
      ->Inc();
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(
      text, "tenant_total{tenant=\"acme \\\"prod\\\"\\\\eu\\nwest\"} 1"))
      << text;
}

TEST(MetricsRegistryTest, EscapePrometheusLabelRules) {
  EXPECT_EQ(EscapePrometheusLabel("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapePrometheusLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePrometheusLabel("a\nb"), "a\\nb");
}

TEST(MetricsRegistryTest, HistogramRendersCumulativeBucketsEndingAtInf) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("lat_seconds", "latency");
  h->Record(0.001);
  h->Record(0.010);
  h->Record(0.100);
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(text, "# TYPE lat_seconds histogram"));
  EXPECT_TRUE(HasLine(text, "lat_seconds_bucket{le=\"+Inf\"} 3"));
  EXPECT_TRUE(HasLine(text, "lat_seconds_count 3"));
  // Bucket counts never decrease as le grows.
  std::vector<double> buckets;
  for (const std::string& line : Lines(text)) {
    const std::string prefix = "lat_seconds_bucket{le=";
    if (line.compare(0, prefix.size(), prefix) == 0) {
      buckets.push_back(std::stod(line.substr(line.rfind(' ') + 1)));
    }
  }
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i], buckets[i - 1]);
  }
}

TEST(MetricsRegistryTest, CollectorFamiliesMergeWithFirstClassOnes) {
  MetricsRegistry registry;
  registry.GetCounter("shared_total", "first", {{"src", "instrument"}})
      ->Inc(1);
  registry.AddCollector([](MetricsRegistry::Emitter* out) {
    out->Counter("shared_total", "second", 2.0, {{"src", "collector"}});
    out->Gauge("pulled_gauge", "pulled", 5.0);
  });
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(text, "shared_total{src=\"instrument\"} 1"));
  EXPECT_TRUE(HasLine(text, "shared_total{src=\"collector\"} 2"));
  EXPECT_TRUE(HasLine(text, "pulled_gauge 5"));
  // One HELP/TYPE pair for the merged family, with the first help text.
  size_t type_lines = 0;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("# TYPE shared_total", 0) == 0) ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_TRUE(HasLine(text, "# HELP shared_total first"));
}

TEST(MetricsRegistryTest, EveryFamilyHasHelpAndTypeBeforeSamples) {
  MetricsRegistry registry;
  registry.GetCounter("a_total", "a")->Inc();
  registry.GetGauge("b_gauge", "b")->Set(1.5);
  registry.GetHistogram("c_seconds", "c")->Record(0.01);
  registry.AddCollector([](MetricsRegistry::Emitter* out) {
    out->Counter("d_total", "d", 4.0);
  });
  std::string last_comment;
  for (const std::string& line : Lines(registry.PrometheusText())) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.compare(0, 7, "# HELP ") == 0 ||
                  line.compare(0, 7, "# TYPE ") == 0)
          << line;
      if (line.compare(0, 7, "# TYPE ") == 0) {
        EXPECT_EQ(last_comment.compare(0, 7, "# HELP "), 0)
            << "# TYPE without preceding # HELP: " << line;
      }
      last_comment = line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST(MetricsRegistryTest, NonFiniteGaugeRendersAsZero) {
  MetricsRegistry registry;
  registry.GetGauge("rate", "a rate")->Set(0.0 / 0.0);
  const std::string text = registry.PrometheusText();
  EXPECT_TRUE(HasLine(text, "rate 0"));
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotFlattensScalarsAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("plain_total", "plain")->Inc(9);
  registry.GetCounter("by_shard_total", "labelled", {{"shard", "0"}})->Inc(4);
  registry.GetCounter("by_shard_total", "labelled", {{"shard", "1"}})->Inc(6);
  registry.GetHistogram("lat_seconds", "latency")->Record(0.010);
  const Json snap = registry.JsonSnapshot();
  ASSERT_TRUE(snap.is_object());
  const Json* plain = snap.Find("plain_total");
  ASSERT_NE(plain, nullptr);
  EXPECT_DOUBLE_EQ(plain->AsNum(), 9.0);
  const Json* labelled = snap.Find("by_shard_total");
  ASSERT_NE(labelled, nullptr);
  EXPECT_TRUE(labelled->is_array());
  const Json* hist = snap.Find("lat_seconds");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsNum(), 1.0);
}

TEST(MetricsRegistryTest, SnapshotUnderConcurrentIncrementNeverTears) {
  MetricsRegistry registry;
  MetricsRegistry::Counter* c = registry.GetCounter("busy_total", "hot");
  LatencyHistogram* h = registry.GetHistogram("busy_seconds", "hot");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Inc();
        h->Record(0.001);
      }
    });
  }
  // Snapshots race the writers: every collected value must be a plausible
  // point-in-time reading — counters monotone across scrapes, histogram
  // sums finite — never corrupt. (Individual histogram cells may tear
  // against each other by a few in-flight Records; that is the documented
  // contract.)
  uint64_t last_count = 0;
  uint64_t last_hist_count = 0;
  for (int i = 0; i < 200; ++i) {
    const std::vector<FamilySnapshot> families = registry.Collect();
    ASSERT_EQ(families.size(), 2u);
    const uint64_t counter_now =
        static_cast<uint64_t>(families[0].samples[0].value);
    EXPECT_GE(counter_now, last_count);
    last_count = counter_now;
    const HistogramData& data = families[1].samples[0].histogram;
    EXPECT_GE(data.count, last_hist_count);
    last_hist_count = data.count;
    EXPECT_TRUE(data.sum >= 0.0);
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  const std::vector<FamilySnapshot> final_families = registry.Collect();
  EXPECT_EQ(static_cast<uint64_t>(final_families[0].samples[0].value),
            c->Value());
}

TEST(HistogramDataTest, PercentileEdgeCases) {
  HistogramData empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);

  HistogramData single;
  single.bounds = {1.0, 2.0, 4.0};
  single.counts = {0, 1, 0};
  single.count = 1;
  single.sum = 1.5;
  EXPECT_DOUBLE_EQ(single.Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(single.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(single.Percentile(1.0), 2.0);

  // Every observation beyond the last finite bound: percentiles can only
  // report the largest bound (the +Inf bucket has no upper edge).
  HistogramData overflow;
  overflow.bounds = {1.0, 2.0};
  overflow.counts = {0, 0};
  overflow.count = 10;
  overflow.sum = 100.0;
  EXPECT_DOUBLE_EQ(overflow.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(overflow.Percentile(0.99), 2.0);
}

}  // namespace
}  // namespace obs
}  // namespace aimq
