#include "relation/schema.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

TEST(SchemaTest, MakeValidSchema) {
  Schema s = CarSchema();
  EXPECT_EQ(s.NumAttributes(), 3u);
  EXPECT_EQ(s.attribute(0).name, "Make");
  EXPECT_EQ(s.attribute(2).type, AttrType::kNumeric);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto r = Schema::Make({{"A", AttrType::kCategorical},
                         {"A", AttrType::kNumeric}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, EmptyNameRejected) {
  auto r = Schema::Make({{"", AttrType::kCategorical}});
  EXPECT_FALSE(r.ok());
}

TEST(SchemaTest, EmptySchemaIsValid) {
  auto r = Schema::Make({});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumAttributes(), 0u);
}

TEST(SchemaTest, IndexOfFindsAttributes) {
  Schema s = CarSchema();
  EXPECT_EQ(*s.IndexOf("Make"), 0u);
  EXPECT_EQ(*s.IndexOf("Price"), 2u);
  EXPECT_FALSE(s.IndexOf("Nope").ok());
  EXPECT_EQ(s.IndexOf("Nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Contains) {
  Schema s = CarSchema();
  EXPECT_TRUE(s.Contains("Model"));
  EXPECT_FALSE(s.Contains("model"));  // case sensitive
}

TEST(SchemaTest, TypeIndexLists) {
  Schema s = CarSchema();
  EXPECT_EQ(s.CategoricalIndices(), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(s.NumericIndices(), (std::vector<size_t>{2}));
}

TEST(SchemaTest, ToStringListsAttributes) {
  EXPECT_EQ(CarSchema().ToString(),
            "(Make:categorical, Model:categorical, Price:numeric)");
}

TEST(SchemaTest, EqualityComparesAttributes) {
  EXPECT_EQ(CarSchema(), CarSchema());
  auto other = Schema::Make({{"Make", AttrType::kCategorical}});
  EXPECT_FALSE(CarSchema() == *other);
}

}  // namespace
}  // namespace aimq
