#include "util/status.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, WithContextCarriesContextSeparately) {
  Status s = Status::Unavailable("queue full").WithContext("queue_depth=8");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "queue full");
  EXPECT_EQ(s.context(), "queue_depth=8");
  EXPECT_EQ(s.ToString(), "Unavailable: queue full [queue_depth=8]");
  // Context participates in equality: a status with context differs from the
  // same status without it.
  EXPECT_FALSE(s == Status::Unavailable("queue full"));
  EXPECT_EQ(s, Status::Unavailable("queue full").WithContext("queue_depth=8"));
}

TEST(StatusTest, CodeNamesRoundTripThroughFromName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kIOError,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kCancelled, StatusCode::kDeadlineExceeded,
        StatusCode::kUnavailable}) {
    auto parsed = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(StatusCodeFromName("NoSuchCode").ok());
  EXPECT_FALSE(StatusCodeFromName("").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STRNE(StatusCodeName(StatusCode::kNotFound),
               StatusCodeName(StatusCode::kInternal));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r(std::string("payload"));
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AIMQ_ASSIGN_OR_RETURN(int h, Half(x));
  AIMQ_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckAll(const std::vector<int>& xs) {
  for (int x : xs) {
    AIMQ_RETURN_NOT_OK(FailIfNegative(x));
  }
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  EXPECT_EQ(CheckAll({1, -2, 3}).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace aimq
