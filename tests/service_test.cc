// AimqService lifecycle: admission control, concurrent sessions, deadlines,
// and graceful drain-then-stop. Also the determinism contract — answers a
// worker pool produces must be bit-identical to a serial engine's.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/cardb.h"
#include "util/stopwatch.h"

namespace aimq {
namespace {

// A source whose every probe costs wall-clock time — makes queue backlog and
// deadline windows deterministic to hit.
class SlowDb : public WebDatabase {
 public:
  SlowDb(std::string name, Relation data, std::chrono::milliseconds delay)
      : WebDatabase(std::move(name), std::move(data)), delay_(delay) {}

  Result<std::vector<uint32_t>> ExecuteRows(
      const SelectionQuery& query) const override {
    std::this_thread::sleep_for(delay_);
    return WebDatabase::ExecuteRows(query);
  }

 private:
  std::chrono::milliseconds delay_;
};

ImpreciseQuery ModelQuery(const std::string& model) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat(model));
  return q;
}

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    Relation data = CarDbGenerator(spec).Generate();
    db_ = new WebDatabase("CarDB", data);
    slow_db_ = new SlowDb("CarDB", std::move(data),
                          std::chrono::milliseconds(5));
    options_ = new AimqOptions();
    options_->collector.sample_size = 300;
    options_->tsim = 0.4;
    options_->top_k = 10;
    auto knowledge = BuildKnowledge(*db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete slow_db_;
    delete db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    slow_db_ = nullptr;
    db_ = nullptr;
  }

  static std::unique_ptr<AimqService> MakeService(ServiceOptions sopts,
                                                  bool slow = false) {
    AimqOptions eopts = *options_;
    eopts.num_threads = 2;
    if (slow) {
      // Make every probe pay the source delay and walk the full relaxation
      // sequence, so an uncancelled run lasts far beyond any test deadline.
      eopts.probe_cache_capacity = 0;
      eopts.relax_stop_after = 0;
      eopts.base_set_limit = 8;
    }
    auto service = std::make_unique<AimqService>(
        slow ? slow_db_ : db_, *knowledge_, eopts, sopts);
    EXPECT_TRUE(service->Start().ok());
    return service;
  }

  static WebDatabase* db_;
  static SlowDb* slow_db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* ServiceTest::db_ = nullptr;
SlowDb* ServiceTest::slow_db_ = nullptr;
AimqOptions* ServiceTest::options_ = nullptr;
MinedKnowledge* ServiceTest::knowledge_ = nullptr;

TEST_F(ServiceTest, AnswersMatchSerialEngineBitForBit) {
  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.queue_depth = 64;
  auto service = MakeService(sopts);

  AimqOptions serial = *options_;
  serial.num_threads = 1;
  AimqEngine reference(db_, *knowledge_, serial);

  const char* kModels[] = {"Camry", "Civic", "Altima", "Outback"};
  for (const char* model : kModels) {
    auto served = service->Execute(ModelQuery(model));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_FALSE(served->truncated);
    auto direct = reference.Answer(ModelQuery(model));
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(served->answers.size(), direct->size()) << model;
    for (size_t i = 0; i < direct->size(); ++i) {
      EXPECT_EQ(served->answers[i].tuple, (*direct)[i].tuple);
      EXPECT_EQ(served->answers[i].similarity, (*direct)[i].similarity);
    }
  }
  service->Stop();
}

TEST_F(ServiceTest, ManyConcurrentSessionsAllComplete) {
  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.queue_depth = 256;
  auto service = MakeService(sopts);

  const char* kModels[] = {"Camry", "Civic", "Altima", "Outback", "Accord",
                           "Corolla", "Sentra", "Maxima"};
  constexpr size_t kSessions = 8;
  constexpr size_t kQueriesPerSession = 3;
  std::atomic<size_t> ok_count{0};
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (size_t i = 0; i < kQueriesPerSession; ++i) {
        auto r = service->Execute(ModelQuery(kModels[(s + i) % 8]));
        if (r.ok() && !r->answers.empty()) ++ok_count;
      }
    });
  }
  for (auto& t : sessions) t.join();
  EXPECT_EQ(ok_count.load(), kSessions * kQueriesPerSession);
  EXPECT_EQ(service->metrics().completed(), kSessions * kQueriesPerSession);
  EXPECT_EQ(service->metrics().rejected(), 0u);
  EXPECT_EQ(service->metrics().InFlight(), 0u);
  EXPECT_EQ(service->metrics().latency().count(),
            kSessions * kQueriesPerSession);
  service->Stop();
}

TEST_F(ServiceTest, FullQueueRejectsImmediatelyWithoutBlocking) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 2;
  auto service = MakeService(sopts, /*slow=*/true);

  std::atomic<size_t> callbacks{0};
  size_t accepted = 0;
  size_t rejected = 0;
  Stopwatch watch;
  for (int i = 0; i < 12; ++i) {
    // Accepted requests carry a deadline so the drain below stays quick.
    Status s = service->Submit(ModelQuery("Camry"),
                               [&](Result<QueryResponse>) { ++callbacks; },
                               /*deadline_ms=*/100);
    if (s.ok()) {
      ++accepted;
    } else {
      ++rejected;
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      EXPECT_FALSE(s.context().empty());  // says which limit was hit
    }
  }
  // All 12 submissions returned while the slow worker has not finished even
  // one request: admission control never blocked the submitting thread.
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service->metrics().rejected(), rejected);
  EXPECT_EQ(service->metrics().accepted(), accepted);
  service->Drain();
  // Every accepted request's callback fired exactly once; rejected ones not
  // at all.
  EXPECT_EQ(callbacks.load(), accepted);
  service->Stop();
}

TEST_F(ServiceTest, DeadlineExceededReturnsTruncatedPartialTopK) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 8;
  auto service = MakeService(sopts, /*slow=*/true);

  auto r = service->Execute(ModelQuery("Camry"), /*deadline_ms=*/80);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  // Base-set tuples match the query exactly, so even a cut-short run has
  // answers to rank.
  EXPECT_GT(r->answers.size(), 0u);
  EXPECT_EQ(service->metrics().truncated(), 1u);
  service->Stop();
}

TEST_F(ServiceTest, DefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.queue_depth = 8;
  sopts.default_deadline_ms = 80;
  auto service = MakeService(sopts, /*slow=*/true);

  auto r = service->Execute(ModelQuery("Camry"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  service->Stop();
}

TEST_F(ServiceTest, StopDrainsQueuedRequestsThenRejectsNewOnes) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.queue_depth = 32;
  auto service = MakeService(sopts, /*slow=*/true);

  std::atomic<size_t> callbacks{0};
  constexpr size_t kRequests = 6;
  for (size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(service
                    ->Submit(ModelQuery("Camry"),
                             [&](Result<QueryResponse> r) {
                               // Queue wait counts against the deadline, so
                               // late-queued requests may finish deadlined —
                               // but each one still gets its callback.
                               if (!r.ok()) {
                                 EXPECT_EQ(r.status().code(),
                                           StatusCode::kDeadlineExceeded)
                                     << r.status().ToString();
                               }
                               ++callbacks;
                             },
                             /*deadline_ms=*/150)
                    .ok());
  }
  service->Stop();
  // Drain-then-stop: every accepted request ran to completion first.
  EXPECT_EQ(callbacks.load(), kRequests);
  EXPECT_FALSE(service->running());
  Status late = service->Submit(ModelQuery("Camry"),
                                [](Result<QueryResponse>) { FAIL(); });
  EXPECT_EQ(late.code(), StatusCode::kUnavailable);
  service->Stop();  // idempotent
}

TEST_F(ServiceTest, DrainWaitsForInFlightWork) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.queue_depth = 32;
  auto service = MakeService(sopts, /*slow=*/true);
  std::atomic<size_t> callbacks{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service
                    ->Submit(ModelQuery("Camry"),
                             [&](Result<QueryResponse>) { ++callbacks; },
                             /*deadline_ms=*/150)
                    .ok());
  }
  service->Drain();
  EXPECT_EQ(callbacks.load(), 4u);
  EXPECT_EQ(service->QueueSize(), 0u);
  EXPECT_TRUE(service->running());  // drain does not close admission
  service->Stop();
}

TEST_F(ServiceTest, StatsJsonReportsCountersAndCacheHitRate) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.queue_depth = 16;
  auto service = MakeService(sopts);
  ASSERT_TRUE(service->Execute(ModelQuery("Camry")).ok());
  ASSERT_TRUE(service->Execute(ModelQuery("Camry")).ok());

  const Json stats = service->StatsJson();
  auto completed = stats.GetNum("completed");
  ASSERT_TRUE(completed.ok());
  EXPECT_DOUBLE_EQ(*completed, 2.0);
  const Json* latency = stats.Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_TRUE(latency->GetNum("p99_ms").ok());
  const Json* cache = stats.Find("probe_cache");
  ASSERT_NE(cache, nullptr);  // engine options enable the probe cache
  // Identical back-to-back queries hit the shared probe cache (or the
  // engine's answer path dedup) — the hit-rate field must be well-formed.
  auto hit_rate = cache->GetNum("hit_rate");
  ASSERT_TRUE(hit_rate.ok());
  EXPECT_GE(*hit_rate, 0.0);
  EXPECT_LE(*hit_rate, 1.0);
  service->Stop();
}

TEST_F(ServiceTest, SubmitBeforeStartIsRejected) {
  ServiceOptions sopts;
  AimqOptions eopts = *options_;
  AimqService service(db_, *knowledge_, eopts, sopts);
  Status s = service.Submit(ModelQuery("Camry"),
                            [](Result<QueryResponse>) { FAIL(); });
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace aimq
