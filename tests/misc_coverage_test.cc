// Focused coverage for smaller public surfaces not exercised elsewhere:
// ValueSimilarityModel mutation API, Stopwatch, error propagation through
// SelectionQuery::Evaluate, and multi-cluster RockEngine answers.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "rock/rock_engine.h"
#include "similarity/value_similarity.h"
#include "util/stopwatch.h"

namespace aimq {
namespace {

// --- ValueSimilarityModel mutation API (used by persistence) ---------------

TEST(ValueSimilarityModelTest, SetValuesAndSetSimilarity) {
  ValueSimilarityModel model;
  ASSERT_TRUE(model.SetValues(0, {Value::Cat("a"), Value::Cat("b"),
                                  Value::Cat("c")})
                  .ok());
  ASSERT_TRUE(model.SetSimilarity(0, Value::Cat("a"), Value::Cat("b"), 0.7)
                  .ok());
  EXPECT_DOUBLE_EQ(model.VSim(0, Value::Cat("a"), Value::Cat("b")), 0.7);
  EXPECT_DOUBLE_EQ(model.VSim(0, Value::Cat("b"), Value::Cat("a")), 0.7);
  EXPECT_DOUBLE_EQ(model.VSim(0, Value::Cat("a"), Value::Cat("c")), 0.0);
  EXPECT_DOUBLE_EQ(model.VSim(0, Value::Cat("a"), Value::Cat("a")), 1.0);
}

TEST(ValueSimilarityModelTest, SetValuesRejectsDuplicates) {
  ValueSimilarityModel model;
  EXPECT_FALSE(model.SetValues(0, {Value::Cat("a"), Value::Cat("a")}).ok());
}

TEST(ValueSimilarityModelTest, SetSimilarityValidation) {
  ValueSimilarityModel model;
  EXPECT_FALSE(
      model.SetSimilarity(0, Value::Cat("a"), Value::Cat("b"), 0.5).ok());
  ASSERT_TRUE(model.SetValues(0, {Value::Cat("a"), Value::Cat("b")}).ok());
  EXPECT_FALSE(
      model.SetSimilarity(0, Value::Cat("a"), Value::Cat("zzz"), 0.5).ok());
  EXPECT_FALSE(
      model.SetSimilarity(0, Value::Cat("a"), Value::Cat("a"), 0.5).ok());
}

TEST(ValueSimilarityModelTest, SetValuesReplacesExistingModel) {
  ValueSimilarityModel model;
  ASSERT_TRUE(model.SetValues(0, {Value::Cat("a"), Value::Cat("b")}).ok());
  ASSERT_TRUE(
      model.SetSimilarity(0, Value::Cat("a"), Value::Cat("b"), 0.9).ok());
  ASSERT_TRUE(model.SetValues(0, {Value::Cat("x"), Value::Cat("y")}).ok());
  EXPECT_DOUBLE_EQ(model.VSim(0, Value::Cat("a"), Value::Cat("b")), 0.0);
  EXPECT_EQ(model.NumStoredPairs(), 0u);
}

TEST(ValueSimilarityModelTest, EntriesRoundTrip) {
  ValueSimilarityModel model;
  ASSERT_TRUE(model.SetValues(2, {Value::Cat("a"), Value::Cat("b"),
                                  Value::Cat("c")})
                  .ok());
  ASSERT_TRUE(model.SetSimilarity(2, Value::Cat("a"), Value::Cat("c"), 0.4)
                  .ok());
  ASSERT_TRUE(model.SetSimilarity(2, Value::Cat("b"), Value::Cat("c"), 0.2)
                  .ok());
  auto entries = model.Entries(2);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(std::get<0>(entries[0]), Value::Cat("a"));
  EXPECT_EQ(std::get<1>(entries[0]), Value::Cat("c"));
  EXPECT_DOUBLE_EQ(std::get<2>(entries[0]), 0.4);
}

// --- Stopwatch ---------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsedTimeMonotonically) {
  Stopwatch watch;
  double t1 = watch.ElapsedSeconds();
  // Burn a little CPU deterministically.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  // Millis and seconds use the same clock: a later millis reading must be at
  // least as large as the earlier seconds reading.
  EXPECT_GE(watch.ElapsedMillis(), t2 * 1000.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), t2 + 1.0);
}

// --- SelectionQuery error propagation ---------------------------------------

TEST(SelectionQueryErrorTest, EvaluatePropagatesPredicateErrors) {
  auto schema = Schema::Make({{"A", AttrType::kCategorical}});
  Relation r(*schema);
  ASSERT_TRUE(r.Append(Tuple({Value::Cat("x")})).ok());
  SelectionQuery like({Predicate::Like("A", Value::Cat("x"))});
  EXPECT_FALSE(like.Evaluate(r).ok());
  SelectionQuery range({Predicate("A", CompareOp::kLt, Value::Cat("x"))});
  EXPECT_FALSE(range.Evaluate(r).ok());
  SelectionQuery unknown({Predicate::Eq("Nope", Value::Cat("x"))});
  EXPECT_FALSE(unknown.Evaluate(r).ok());
}

// --- RockEngine with base answers spread over multiple clusters ------------

TEST(RockEngineMultiClusterTest, AnswerMergesClusters) {
  auto schema = Schema::Make({{"Kind", AttrType::kCategorical},
                              {"Tag", AttrType::kCategorical},
                              {"Flag", AttrType::kCategorical}});
  Relation r(*schema);
  auto add = [&](const char* kind, const char* tag, const char* flag,
                 int copies) {
    for (int i = 0; i < copies; ++i) {
      ASSERT_TRUE(r.Append(Tuple({Value::Cat(kind), Value::Cat(tag),
                                  Value::Cat(flag)}))
                      .ok());
    }
  };
  // Two clusters that both contain Flag=shared tuples.
  add("alpha", "a1", "shared", 8);
  add("alpha", "a2", "other", 8);
  add("beta", "b1", "shared", 8);
  add("beta", "b2", "other", 8);

  RockOptions opts;
  opts.theta = 0.4;
  opts.num_clusters = 2;
  opts.sample_size = r.NumTuples();
  auto engine = RockEngine::Build(r, opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // The base query Flag=shared matches tuples in both clusters; answers may
  // come from either, ranked by query-item similarity.
  ImpreciseQuery q;
  q.Bind("Flag", Value::Cat("shared"));
  auto answers = engine->Answer(q, 10);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_FALSE(answers->empty());
  bool saw_alpha = false, saw_beta = false;
  for (const RankedAnswer& a : *answers) {
    const std::string& kind = a.tuple.At(0).AsCat();
    saw_alpha |= (kind == "alpha");
    saw_beta |= (kind == "beta");
    // Top answers all carry the queried flag.
    EXPECT_EQ(a.tuple.At(2).AsCat(), "shared");
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

}  // namespace
}  // namespace aimq
