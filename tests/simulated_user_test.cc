#include "eval/simulated_user.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace aimq {
namespace {

Tuple T(double x) { return Tuple({Value::Num(x)}); }

// Oracle: similarity decays with numeric distance.
double Oracle(const Tuple& q, const Tuple& t) {
  double d = std::abs(q.At(0).AsNum() - t.At(0).AsNum()) / 10.0;
  return d > 1.0 ? 0.0 : 1.0 - d;
}

std::vector<RankedAnswer> Answers(std::initializer_list<double> xs) {
  std::vector<RankedAnswer> out;
  for (double x : xs) out.push_back(RankedAnswer{T(x), 0.0});
  return out;
}

SimulatedUserOptions NoNoise() {
  SimulatedUserOptions opts;
  opts.noise_stddev = 0.0;
  opts.irrelevant_below = 0.3;
  return opts;
}

TEST(SimulatedUserTest, RanksByOracleSimilarity) {
  SimulatedUser user(Oracle, NoNoise());
  // Query 0; answers at distances 3, 1, 2. The user's best answer is the
  // one at distance 1 (rank 1), then distance 2 (rank 2), then 3 (rank 3),
  // reported aligned with the system's answer order.
  auto ranks = user.RankAnswers(T(0), Answers({3, 1, 2}));
  EXPECT_EQ(ranks, (std::vector<int>{3, 1, 2}));
}

TEST(SimulatedUserTest, PerfectSystemOrderGetsIdentityRanks) {
  SimulatedUser user(Oracle, NoNoise());
  auto ranks = user.RankAnswers(T(0), Answers({0.5, 1, 2, 3}));
  EXPECT_EQ(ranks, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatedUserTest, IrrelevantAnswersGetRankZero) {
  SimulatedUser user(Oracle, NoNoise());
  // Distance 9 → similarity 0.1 < 0.3 floor.
  auto ranks = user.RankAnswers(T(0), Answers({1, 9}));
  EXPECT_EQ(ranks[0], 1);
  EXPECT_EQ(ranks[1], 0);
}

TEST(SimulatedUserTest, RanksAreDensePermutationOfRelevant) {
  SimulatedUser user(Oracle, NoNoise());
  auto ranks = user.RankAnswers(T(0), Answers({5, 1, 9, 2, 3}));
  std::multiset<int> nonzero;
  for (int r : ranks) {
    if (r != 0) nonzero.insert(r);
  }
  // Exactly ranks 1..4 among the four relevant answers.
  EXPECT_EQ(nonzero, (std::multiset<int>{1, 2, 3, 4}));
}

TEST(SimulatedUserTest, EmptyAnswerList) {
  SimulatedUser user(Oracle, NoNoise());
  EXPECT_TRUE(user.RankAnswers(T(0), {}).empty());
}

TEST(SimulatedUserTest, NoiseIsDeterministicPerSeed) {
  SimulatedUserOptions opts;
  opts.noise_stddev = 0.1;
  opts.seed = 21;
  SimulatedUser a(Oracle, opts), b(Oracle, opts);
  auto answers = Answers({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(a.RankAnswers(T(0), answers), b.RankAnswers(T(0), answers));
}

TEST(SimulatedUserTest, HighNoiseCanReorder) {
  SimulatedUserOptions opts;
  opts.noise_stddev = 1.0;
  opts.irrelevant_below = -10.0;  // nothing is irrelevant
  opts.seed = 33;
  SimulatedUser noisy(Oracle, opts);
  // With huge noise across many trials, at least one ranking must deviate
  // from the oracle order.
  bool deviated = false;
  for (int trial = 0; trial < 20 && !deviated; ++trial) {
    auto ranks = noisy.RankAnswers(T(0), Answers({1, 2, 3, 4}));
    deviated = (ranks != std::vector<int>{1, 2, 3, 4});
  }
  EXPECT_TRUE(deviated);
}

}  // namespace
}  // namespace aimq
