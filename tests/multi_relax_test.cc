#include "ordering/multi_relax.h"

#include <gtest/gtest.h>

#include <set>

namespace aimq {
namespace {

TEST(MultiAttributeOrderTest, MatchesPaperExample) {
  // Paper §4: 1-attribute order ⟨a1, a3, a4, a2⟩ gives 2-attribute order
  // a1a3, a1a4, a1a2, a3a4, a3a2, a4a2.
  std::vector<size_t> order{1, 3, 4, 2};
  auto combos = MultiAttributeOrder(order, 2);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos[0], (std::vector<size_t>{1, 3}));
  EXPECT_EQ(combos[1], (std::vector<size_t>{1, 4}));
  EXPECT_EQ(combos[2], (std::vector<size_t>{1, 2}));
  EXPECT_EQ(combos[3], (std::vector<size_t>{3, 4}));
  EXPECT_EQ(combos[4], (std::vector<size_t>{3, 2}));
  EXPECT_EQ(combos[5], (std::vector<size_t>{4, 2}));
}

TEST(MultiAttributeOrderTest, SizeOneIsTheOrderItself) {
  std::vector<size_t> order{5, 0, 2};
  auto combos = MultiAttributeOrder(order, 1);
  ASSERT_EQ(combos.size(), 3u);
  EXPECT_EQ(combos[0], (std::vector<size_t>{5}));
  EXPECT_EQ(combos[1], (std::vector<size_t>{0}));
  EXPECT_EQ(combos[2], (std::vector<size_t>{2}));
}

TEST(MultiAttributeOrderTest, FullSizeSingleCombo) {
  std::vector<size_t> order{2, 0, 1};
  auto combos = MultiAttributeOrder(order, 3);
  ASSERT_EQ(combos.size(), 1u);
  EXPECT_EQ(combos[0], order);
}

TEST(MultiAttributeOrderTest, DegenerateInputs) {
  EXPECT_TRUE(MultiAttributeOrder({1, 2}, 0).empty());
  EXPECT_TRUE(MultiAttributeOrder({1, 2}, 3).empty());
  EXPECT_TRUE(MultiAttributeOrder({}, 1).empty());
}

TEST(MultiAttributeOrderTest, CombinationCountIsBinomial) {
  std::vector<size_t> order{0, 1, 2, 3, 4, 5, 6};
  EXPECT_EQ(MultiAttributeOrder(order, 2).size(), 21u);
  EXPECT_EQ(MultiAttributeOrder(order, 3).size(), 35u);
  EXPECT_EQ(MultiAttributeOrder(order, 7).size(), 1u);
}

TEST(RelaxationSequenceTest, StreamsLevelsInOrder) {
  RelaxationSequence seq({1, 3, 4, 2}, 2);
  std::vector<std::vector<size_t>> all;
  while (seq.HasNext()) all.push_back(seq.Next());
  ASSERT_EQ(all.size(), 10u);  // 4 singles + 6 pairs
  EXPECT_EQ(all[0], (std::vector<size_t>{1}));
  EXPECT_EQ(all[3], (std::vector<size_t>{2}));
  EXPECT_EQ(all[4], (std::vector<size_t>{1, 3}));
  EXPECT_EQ(all[9], (std::vector<size_t>{4, 2}));
}

TEST(RelaxationSequenceTest, MaxAttrsClampedToOrderSize) {
  RelaxationSequence seq({0, 1}, 99);
  size_t count = 0;
  while (seq.HasNext()) {
    seq.Next();
    ++count;
  }
  EXPECT_EQ(count, 3u);  // {0}, {1}, {0,1}
}

TEST(RelaxationSequenceTest, TotalCombinationsMatchesStream) {
  RelaxationSequence seq({0, 1, 2, 3, 4}, 3);
  size_t count = 0;
  RelaxationSequence counter({0, 1, 2, 3, 4}, 3);
  while (counter.HasNext()) {
    counter.Next();
    ++count;
  }
  EXPECT_EQ(seq.TotalCombinations(), count);
  EXPECT_EQ(count, 5u + 10u + 10u);
}

TEST(RelaxationSequenceTest, EmptyOrderYieldsNothing) {
  RelaxationSequence seq({}, 3);
  EXPECT_FALSE(seq.HasNext());
  EXPECT_EQ(seq.TotalCombinations(), 0u);
}

TEST(RelaxationSequenceTest, NoDuplicateCombinations) {
  RelaxationSequence seq({0, 1, 2, 3, 4, 5}, 4);
  std::set<std::set<size_t>> seen;
  while (seq.HasNext()) {
    auto combo = seq.Next();
    EXPECT_TRUE(seen.insert(std::set<size_t>(combo.begin(), combo.end()))
                    .second);
  }
}

}  // namespace
}  // namespace aimq
