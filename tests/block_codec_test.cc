// Round-trip and robustness tests for the block codecs: the dependency-free
// Lite LZ codec always, zstd when the build has it.

#include "storage/block_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace aimq {
namespace storage {
namespace {

std::vector<uint8_t> Compress(const BlockCodec& codec,
                              const std::vector<uint8_t>& in) {
  std::vector<uint8_t> out;
  codec.Compress(in.data(), in.size(), &out);
  return out;
}

void ExpectRoundTrip(const BlockCodec& codec, const std::vector<uint8_t>& in) {
  const std::vector<uint8_t> compressed = Compress(codec, in);
  std::vector<uint8_t> out;
  const Status st =
      codec.Decompress(compressed.data(), compressed.size(), in.size(), &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out, in);
}

std::vector<const BlockCodec*> AllCodecs() {
  std::vector<const BlockCodec*> codecs = {CodecFor(CodecKind::kLite)};
  if (ZstdAvailable()) codecs.push_back(CodecFor(CodecKind::kZstd));
  return codecs;
}

TEST(BlockCodecTest, EmptyInput) {
  for (const BlockCodec* codec : AllCodecs()) {
    ExpectRoundTrip(*codec, {});
  }
}

TEST(BlockCodecTest, ShortIncompressibleInput) {
  for (const BlockCodec* codec : AllCodecs()) {
    ExpectRoundTrip(*codec, {1, 2, 3});
    ExpectRoundTrip(*codec, {0xff});
  }
}

TEST(BlockCodecTest, LongRunCompressesWell) {
  const std::vector<uint8_t> run(100'000, 0x5a);
  for (const BlockCodec* codec : AllCodecs()) {
    const std::vector<uint8_t> compressed = Compress(*codec, run);
    EXPECT_LT(compressed.size(), run.size() / 50)
        << codec->name() << " should crush a constant run";
    ExpectRoundTrip(*codec, run);
  }
}

TEST(BlockCodecTest, RepeatedPatternRoundTrips) {
  std::vector<uint8_t> in;
  const std::string pattern = "Toyota Camry 2004 Silver ";
  while (in.size() < 64 * 1024) {
    in.insert(in.end(), pattern.begin(), pattern.end());
  }
  for (const BlockCodec* codec : AllCodecs()) {
    const std::vector<uint8_t> compressed = Compress(*codec, in);
    EXPECT_LT(compressed.size(), in.size() / 4) << codec->name();
    ExpectRoundTrip(*codec, in);
  }
}

TEST(BlockCodecTest, RandomBytesRoundTrip) {
  Rng rng(123);
  for (size_t n : {1u, 17u, 255u, 256u, 4096u, 70'000u}) {
    std::vector<uint8_t> in;
    in.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      in.push_back(static_cast<uint8_t>(rng.Next() & 0xff));
    }
    for (const BlockCodec* codec : AllCodecs()) {
      ExpectRoundTrip(*codec, in);
    }
  }
}

TEST(BlockCodecTest, MixedCompressibleAndRandomSegments) {
  Rng rng(99);
  std::vector<uint8_t> in;
  for (int seg = 0; seg < 20; ++seg) {
    if (seg % 2 == 0) {
      in.insert(in.end(), 3000, static_cast<uint8_t>(seg));
    } else {
      for (int i = 0; i < 500; ++i) {
        in.push_back(static_cast<uint8_t>(rng.Next() & 0xff));
      }
    }
  }
  for (const BlockCodec* codec : AllCodecs()) {
    ExpectRoundTrip(*codec, in);
  }
}

TEST(BlockCodecTest, LiteRejectsTruncatedPayload) {
  const BlockCodec* lite = CodecFor(CodecKind::kLite);
  std::vector<uint8_t> in(10'000, 0x33);
  const std::vector<uint8_t> compressed = Compress(*lite, in);
  ASSERT_GT(compressed.size(), 2u);
  std::vector<uint8_t> out;
  EXPECT_FALSE(lite->Decompress(compressed.data(), compressed.size() - 1,
                                in.size(), &out)
                   .ok());
  EXPECT_FALSE(lite->Decompress(compressed.data(), 1, in.size(), &out).ok());
}

TEST(BlockCodecTest, LiteRejectsWrongDecodedSize) {
  const BlockCodec* lite = CodecFor(CodecKind::kLite);
  std::vector<uint8_t> in(1'000, 0x33);
  const std::vector<uint8_t> compressed = Compress(*lite, in);
  std::vector<uint8_t> out;
  EXPECT_FALSE(lite->Decompress(compressed.data(), compressed.size(),
                                in.size() + 5, &out)
                   .ok());
}

TEST(BlockCodecTest, NamesAndLookup) {
  EXPECT_EQ(CodecFor(CodecKind::kNone), nullptr);
  EXPECT_STREQ(CodecFor(CodecKind::kLite)->name(), "lite");
  EXPECT_STREQ(CodecName(CodecKind::kLite), "lite");
  ASSERT_TRUE(CodecFromName("lite").ok());
  ASSERT_TRUE(CodecFromName("none").ok());
  EXPECT_FALSE(CodecFromName("snappy").ok());
  if (!ZstdAvailable()) {
    EXPECT_FALSE(CodecFromName("zstd").ok());
  } else {
    ASSERT_TRUE(CodecFromName("zstd").ok());
    EXPECT_STREQ(CodecFor(CodecKind::kZstd)->name(), "zstd");
  }
}

}  // namespace
}  // namespace storage
}  // namespace aimq
