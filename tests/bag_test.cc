#include "util/bag.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

TEST(BagTest, EmptyBag) {
  Bag b;
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.DistinctSize(), 0u);
  EXPECT_EQ(b.TotalSize(), 0u);
  EXPECT_EQ(b.Count("x"), 0u);
}

TEST(BagTest, AddAccumulatesCounts) {
  Bag b;
  b.Add("white");
  b.Add("white", 4);
  b.Add("black", 2);
  EXPECT_EQ(b.Count("white"), 5u);
  EXPECT_EQ(b.Count("black"), 2u);
  EXPECT_EQ(b.DistinctSize(), 2u);
  EXPECT_EQ(b.TotalSize(), 7u);
}

TEST(BagTest, AddZeroIsNoop) {
  Bag b;
  b.Add("x", 0);
  EXPECT_TRUE(b.Empty());
}

TEST(BagTest, IntersectionUsesMinCounts) {
  Bag a, b;
  a.Add("x", 3);
  a.Add("y", 1);
  b.Add("x", 2);
  b.Add("z", 5);
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
}

TEST(BagTest, UnionUsesMaxCounts) {
  Bag a, b;
  a.Add("x", 3);
  a.Add("y", 1);
  b.Add("x", 2);
  b.Add("z", 5);
  // max(3,2) + max(1,0) + max(0,5) = 3 + 1 + 5 = 9
  EXPECT_EQ(a.UnionSize(b), 9u);
  EXPECT_EQ(b.UnionSize(a), 9u);
}

TEST(BagTest, JaccardIdenticalBagsIsOne) {
  Bag a;
  a.Add("x", 3);
  a.Add("y", 2);
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(a), 1.0);
}

TEST(BagTest, JaccardDisjointBagsIsZero) {
  Bag a, b;
  a.Add("x", 3);
  b.Add("y", 3);
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(b), 0.0);
}

TEST(BagTest, JaccardBothEmptyIsZero) {
  Bag a, b;
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(b), 0.0);
}

TEST(BagTest, JaccardPartialOverlap) {
  Bag a, b;
  a.Add("x", 2);
  b.Add("x", 2);
  b.Add("y", 2);
  // inter = 2, union = 4.
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(b), 0.5);
}

TEST(BagTest, JaccardIsSymmetric) {
  Bag a, b;
  a.Add("x", 7);
  a.Add("y", 1);
  a.Add("z", 2);
  b.Add("x", 3);
  b.Add("w", 4);
  EXPECT_DOUBLE_EQ(a.JaccardSimilarity(b), b.JaccardSimilarity(a));
}

TEST(BagTest, SortedEntriesByCountThenKeyword) {
  Bag b;
  b.Add("beta", 5);
  b.Add("alpha", 5);
  b.Add("gamma", 9);
  auto entries = b.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, "gamma");
  EXPECT_EQ(entries[1].first, "alpha");  // tie at 5 → alphabetical
  EXPECT_EQ(entries[2].first, "beta");
}

}  // namespace
}  // namespace aimq
