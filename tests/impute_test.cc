#include "core/impute.h"

#include <gtest/gtest.h>

#include "afd/tane.h"
#include "datagen/cardb.h"

namespace aimq {
namespace {

class ImputeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 5000;
    spec.seed = 19;
    sample_ = new Relation(CarDbGenerator(spec).Generate());
    TaneOptions opts;  // defaults mine Model→Make and friends
    auto deps = Tane::Mine(*sample_, opts);
    ASSERT_TRUE(deps.ok());
    deps_ = new MinedDependencies(deps.TakeValue());
  }
  static void TearDownTestSuite() {
    delete deps_;
    delete sample_;
    deps_ = nullptr;
    sample_ = nullptr;
  }

  // A CarDB tuple with chosen values; pass nullptr to null an attribute.
  static Tuple Car(const char* make, const char* model, const char* year) {
    std::vector<Value> v(7);
    if (make) v[CarDbGenerator::kMake] = Value::Cat(make);
    if (model) v[CarDbGenerator::kModel] = Value::Cat(model);
    if (year) v[CarDbGenerator::kYear] = Value::Cat(year);
    v[CarDbGenerator::kPrice] = Value::Num(9000);
    v[CarDbGenerator::kMileage] = Value::Num(60000);
    v[CarDbGenerator::kLocation] = Value::Cat("Chicago");
    v[CarDbGenerator::kColor] = Value::Cat("White");
    return Tuple(std::move(v));
  }

  static Relation* sample_;
  static MinedDependencies* deps_;
};

Relation* ImputeTest::sample_ = nullptr;
MinedDependencies* ImputeTest::deps_ = nullptr;

TEST_F(ImputeTest, ModelPredictsMissingMake) {
  AfdImputer imputer(sample_, deps_);
  Tuple t = Car(nullptr, "Camry", "2000");
  auto imputation = imputer.ImputeAttribute(t, CarDbGenerator::kMake);
  ASSERT_TRUE(imputation.ok()) << imputation.status().ToString();
  EXPECT_EQ(imputation->value, Value::Cat("Toyota"));
  EXPECT_DOUBLE_EQ(imputation->confidence, 1.0);  // Model→Make is exact
  EXPECT_GT(imputation->evidence, 10u);
  EXPECT_EQ(imputation->rule.rhs, CarDbGenerator::kMake);
  EXPECT_TRUE(AttrSetContains(imputation->rule.lhs, CarDbGenerator::kModel));
}

TEST_F(ImputeTest, RejectsNonNullAttribute) {
  AfdImputer imputer(sample_, deps_);
  Tuple t = Car("Toyota", "Camry", "2000");
  EXPECT_FALSE(imputer.ImputeAttribute(t, CarDbGenerator::kMake).ok());
}

TEST_F(ImputeTest, NoRuleForUnpredictableAttribute) {
  // Nothing (reliably) determines Color in CarDB.
  AfdImputer imputer(sample_, deps_);
  std::vector<Value> v = Car("Toyota", "Camry", "2000").values();
  v[CarDbGenerator::kColor] = Value();
  auto imputation =
      imputer.ImputeAttribute(Tuple(std::move(v)), CarDbGenerator::kColor);
  EXPECT_FALSE(imputation.ok());
  EXPECT_EQ(imputation.status().code(), StatusCode::kNotFound);
}

TEST_F(ImputeTest, UnknownAntecedentValueLacksEvidence) {
  AfdImputer imputer(sample_, deps_);
  Tuple t = Car(nullptr, "NotARealModel", "2000");
  EXPECT_FALSE(imputer.ImputeAttribute(t, CarDbGenerator::kMake).ok());
}

TEST_F(ImputeTest, ImputeTupleFillsWhatItCan) {
  AfdImputer imputer(sample_, deps_);
  std::vector<Value> v = Car(nullptr, "F-150", "1999").values();
  v[CarDbGenerator::kColor] = Value();  // not imputable
  Tuple t(std::move(v));
  auto applied = imputer.ImputeTuple(&t);
  ASSERT_TRUE(applied.ok());
  ASSERT_EQ(applied->size(), 1u);
  EXPECT_EQ(t.At(CarDbGenerator::kMake), Value::Cat("Ford"));
  EXPECT_TRUE(t.At(CarDbGenerator::kColor).is_null());
}

TEST_F(ImputeTest, PolicyThresholdsRespected) {
  ImputeOptions strict;
  strict.min_evidence = 1000000;  // impossible
  AfdImputer imputer(sample_, deps_, strict);
  Tuple t = Car(nullptr, "Camry", "2000");
  EXPECT_FALSE(imputer.ImputeAttribute(t, CarDbGenerator::kMake).ok());
}

TEST_F(ImputeTest, ArityValidation) {
  AfdImputer imputer(sample_, deps_);
  Tuple bad({Value::Cat("x")});
  EXPECT_FALSE(imputer.ImputeAttribute(bad, 0).ok());
  EXPECT_FALSE(imputer.ImputeTuple(&bad).ok());
}

}  // namespace
}  // namespace aimq
