// TraceRecorder / TraceSpan unit tests: exact timestamps via a fake clock,
// ring overwrite semantics, the disabled fast path, and the Chrome
// trace-event JSON shape.

#include "util/trace.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"

namespace aimq {
namespace {

// Hand-advanced clock: every NowNanos() call returns the current value and
// advances by `step`, so span timestamps/durations are exact.
class FakeClock : public TraceClock {
 public:
  explicit FakeClock(uint64_t start = 1000, uint64_t step = 0)
      : now_(start), step_(step) {}

  uint64_t NowNanos() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed);
  }

  void Advance(uint64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<uint64_t> now_;
  const uint64_t step_;
};

TraceEvent MakeEvent(const char* name, uint64_t request_id = 0) {
  TraceEvent e;
  e.name = name;
  e.category = "test";
  e.request_id = request_id;
  return e;
}

TEST(TraceRecorderTest, RecordsAndSnapshotsInOrder) {
  TraceRecorder recorder(8);
  recorder.Record(MakeEvent("a", 1));
  recorder.Record(MakeEvent("b", 2));
  recorder.Record(MakeEvent("c", 3));
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(events[2].request_id, 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder recorder(3);
  recorder.Record(MakeEvent("a"));
  recorder.Record(MakeEvent("b"));
  recorder.Record(MakeEvent("c"));
  recorder.Record(MakeEvent("d"));
  recorder.Record(MakeEvent("e"));
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "c");  // oldest survivor
  EXPECT_EQ(events[1].name, "d");
  EXPECT_EQ(events[2].name, "e");
  EXPECT_EQ(recorder.dropped(), 2u);
}

TEST(TraceRecorderTest, ZeroCapacityRetainsNothing) {
  TraceRecorder recorder(0);
  recorder.Record(MakeEvent("a"));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(TraceRecorderTest, DisabledRecorderDropsSilently) {
  TraceRecorder recorder(8);
  recorder.set_enabled(false);
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(MakeEvent("a"));
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.set_enabled(true);
  recorder.Record(MakeEvent("b"));
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
}

TEST(TraceRecorderTest, ClearResetsRingAndDropCounter) {
  TraceRecorder recorder(2);
  recorder.Record(MakeEvent("a"));
  recorder.Record(MakeEvent("b"));
  recorder.Record(MakeEvent("c"));
  EXPECT_EQ(recorder.dropped(), 1u);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
  recorder.Record(MakeEvent("d"));
  ASSERT_EQ(recorder.Snapshot().size(), 1u);
  EXPECT_EQ(recorder.Snapshot()[0].name, "d");
}

TEST(TraceSpanTest, FakeClockYieldsExactTimestamps) {
  FakeClock clock(/*start=*/5000, /*step=*/0);
  TraceRecorder recorder(8, &clock);
  {
    TraceSpan span(&recorder, "work", "test", 7);
    clock.Advance(2500);
    span.AddArg("items", 3.0);
  }
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].request_id, 7u);
  EXPECT_EQ(events[0].start_nanos, 5000u);
  EXPECT_EQ(events[0].duration_nanos, 2500u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "items");
  EXPECT_DOUBLE_EQ(events[0].args[0].second, 3.0);
}

TEST(TraceSpanTest, NullRecorderIsInert) {
  TraceSpan span(nullptr, "work", "test", 1);
  span.AddArg("x", 1.0);  // must not crash
}

TEST(TraceSpanTest, DisabledRecorderArmsNothing) {
  FakeClock clock;
  TraceRecorder recorder(8, &clock);
  recorder.set_enabled(false);
  { TraceSpan span(&recorder, "work", "test", 1); }
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorderTest, ChromeTraceJsonShape) {
  FakeClock clock(/*start=*/1'000'000, /*step=*/0);
  TraceRecorder recorder(8, &clock);
  {
    TraceSpan span(&recorder, "probe", "engine", 42);
    clock.Advance(3'000);  // 3 µs
    span.AddArg("cache_hit", 1.0);
  }
  // The dump must parse back as JSON with the documented shape.
  const std::string dump = recorder.ChromeTraceJson().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& doc = *parsed;
  ASSERT_TRUE(doc.is_object());
  const Json* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->AsStr(), "ms");
  const Json* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->AsArr().size(), 1u);
  const Json& e = events->AsArr()[0];
  EXPECT_EQ(e.Find("name")->AsStr(), "probe");
  EXPECT_EQ(e.Find("cat")->AsStr(), "engine");
  EXPECT_EQ(e.Find("ph")->AsStr(), "X");
  EXPECT_DOUBLE_EQ(e.Find("ts")->AsNum(), 1'000.0);  // µs
  EXPECT_DOUBLE_EQ(e.Find("dur")->AsNum(), 3.0);     // µs
  EXPECT_DOUBLE_EQ(e.Find("pid")->AsNum(), 1.0);
  const Json* args = e.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->Find("request_id")->AsNum(), 42.0);
  EXPECT_DOUBLE_EQ(args->Find("cache_hit")->AsNum(), 1.0);
}

TEST(TraceRecorderTest, EmptyChromeTraceJsonIsValid) {
  const std::string dump = TraceRecorder::ToChromeTraceJson({}).Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("traceEvents")->AsArr().empty());
}

TEST(TraceRecorderTest, ThreadIdsAreDistinctAndStable) {
  const uint64_t mine = TraceRecorder::CurrentThreadId();
  EXPECT_EQ(TraceRecorder::CurrentThreadId(), mine);  // stable per thread
  std::set<uint64_t> ids;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      const uint64_t id = TraceRecorder::CurrentThreadId();
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids.count(mine), 0u);
}

TEST(TraceRecorderTest, ConcurrentRecordsAllLand) {
  TraceRecorder recorder(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 100; ++i) {
        recorder.Record(MakeEvent("e", static_cast<uint64_t>(t)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.Snapshot().size(), 400u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace aimq
