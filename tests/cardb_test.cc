#include "datagen/cardb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

namespace aimq {
namespace {

CarDbGenerator SmallGen() {
  CarDbSpec spec;
  spec.num_tuples = 5000;
  spec.seed = 1;
  return CarDbGenerator(spec);
}

TEST(CarDbTest, SchemaMatchesPaper) {
  Schema s = CarDbGenerator::MakeSchema();
  ASSERT_EQ(s.NumAttributes(), 7u);
  EXPECT_EQ(s.attribute(CarDbGenerator::kMake).name, "Make");
  EXPECT_EQ(s.attribute(CarDbGenerator::kModel).name, "Model");
  EXPECT_EQ(s.attribute(CarDbGenerator::kYear).name, "Year");
  EXPECT_EQ(s.attribute(CarDbGenerator::kPrice).name, "Price");
  EXPECT_EQ(s.attribute(CarDbGenerator::kMileage).name, "Mileage");
  // Paper §6.1: Make, Model, Year, Location, Color are categorical.
  EXPECT_EQ(s.attribute(CarDbGenerator::kYear).type, AttrType::kCategorical);
  EXPECT_EQ(s.attribute(CarDbGenerator::kPrice).type, AttrType::kNumeric);
  EXPECT_EQ(s.attribute(CarDbGenerator::kMileage).type, AttrType::kNumeric);
}

TEST(CarDbTest, GeneratesRequestedCount) {
  Relation r = SmallGen().Generate();
  EXPECT_EQ(r.NumTuples(), 5000u);
}

TEST(CarDbTest, DeterministicPerSeed) {
  CarDbSpec spec;
  spec.num_tuples = 500;
  spec.seed = 42;
  Relation a = CarDbGenerator(spec).Generate();
  Relation b = CarDbGenerator(spec).Generate();
  EXPECT_EQ(a.tuples(), b.tuples());
  spec.seed = 43;
  Relation c = CarDbGenerator(spec).Generate();
  EXPECT_NE(a.tuples(), c.tuples());
}

TEST(CarDbTest, ModelFunctionallyDeterminesMake) {
  CarDbGenerator gen = SmallGen();
  Relation r = gen.Generate();
  std::unordered_map<std::string, std::string> model_to_make;
  for (const Tuple& t : r.tuples()) {
    const std::string& model = t.At(CarDbGenerator::kModel).AsCat();
    const std::string& make = t.At(CarDbGenerator::kMake).AsCat();
    auto [it, inserted] = model_to_make.emplace(model, make);
    EXPECT_EQ(it->second, make) << "Model→Make violated for " << model;
  }
  EXPECT_GT(model_to_make.size(), 50u);
}

TEST(CarDbTest, YearsWithinSpecRange) {
  CarDbSpec spec;
  spec.num_tuples = 2000;
  spec.min_year = 1990;
  spec.max_year = 2003;
  Relation r = CarDbGenerator(spec).Generate();
  for (const Tuple& t : r.tuples()) {
    int year = std::stoi(t.At(CarDbGenerator::kYear).AsCat());
    EXPECT_GE(year, 1990);
    EXPECT_LE(year, 2003);
  }
}

TEST(CarDbTest, PricesPositiveAndRounded) {
  Relation r = SmallGen().Generate();
  for (const Tuple& t : r.tuples()) {
    double price = t.At(CarDbGenerator::kPrice).AsNum();
    EXPECT_GE(price, 500.0);
    EXPECT_DOUBLE_EQ(price, std::round(price / 100.0) * 100.0);
    double miles = t.At(CarDbGenerator::kMileage).AsNum();
    EXPECT_GE(miles, 1000.0);
    EXPECT_DOUBLE_EQ(miles, std::round(miles / 500.0) * 500.0);
  }
}

TEST(CarDbTest, OlderCarsCheaperOnAverage) {
  Relation r = SmallGen().Generate();
  double old_sum = 0, new_sum = 0;
  size_t old_n = 0, new_n = 0;
  for (const Tuple& t : r.tuples()) {
    int year = std::stoi(t.At(CarDbGenerator::kYear).AsCat());
    double price = t.At(CarDbGenerator::kPrice).AsNum();
    if (year <= 1995) {
      old_sum += price;
      ++old_n;
    } else if (year >= 2002) {
      new_sum += price;
      ++new_n;
    }
  }
  ASSERT_GT(old_n, 50u);
  ASSERT_GT(new_n, 50u);
  EXPECT_LT(old_sum / old_n, 0.5 * (new_sum / new_n));
}

TEST(CarDbTest, OlderCarsHaveMoreMiles) {
  Relation r = SmallGen().Generate();
  double old_sum = 0, new_sum = 0;
  size_t old_n = 0, new_n = 0;
  for (const Tuple& t : r.tuples()) {
    int year = std::stoi(t.At(CarDbGenerator::kYear).AsCat());
    double miles = t.At(CarDbGenerator::kMileage).AsNum();
    if (year <= 1995) {
      old_sum += miles;
      ++old_n;
    } else if (year >= 2002) {
      new_sum += miles;
      ++new_n;
    }
  }
  EXPECT_GT(old_sum / old_n, 2.0 * (new_sum / new_n));
}

TEST(CarDbTest, CatalogCoversPaperTable3Models) {
  CarDbGenerator gen = SmallGen();
  std::set<std::string> models;
  std::set<std::string> makes;
  for (const CarModelInfo& m : gen.catalog()) {
    models.insert(m.model);
    makes.insert(m.make);
  }
  // Values the paper's Table 3 and Figure 5 mention.
  for (const char* m : {"Bronco", "Aerostar", "F-350", "Econoline Van"}) {
    EXPECT_TRUE(models.count(m)) << m;
  }
  for (const char* m : {"Kia", "Hyundai", "Isuzu", "Subaru", "Ford",
                        "Chevrolet", "Toyota", "Honda", "BMW", "Nissan",
                        "Dodge"}) {
    EXPECT_TRUE(makes.count(m)) << m;
  }
}

TEST(CarDbTest, ModelSimilarityOracleSaneOrdering) {
  CarDbGenerator gen = SmallGen();
  EXPECT_DOUBLE_EQ(gen.ModelSimilarity("Camry", "Camry"), 1.0);
  double camry_accord = gen.ModelSimilarity("Camry", "Accord");
  double camry_f350 = gen.ModelSimilarity("Camry", "F-350");
  EXPECT_GT(camry_accord, camry_f350);
  EXPECT_DOUBLE_EQ(gen.ModelSimilarity("Camry", "NotACar"), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(gen.ModelSimilarity("Camry", "Accord"),
                   gen.ModelSimilarity("Accord", "Camry"));
}

TEST(CarDbTest, MakeSimilarityOracleKiaHyundai) {
  CarDbGenerator gen = SmallGen();
  // Paper Table 3: Kia's most similar make is Hyundai.
  double kia_hyundai = gen.MakeSimilarity("Kia", "Hyundai");
  double kia_bmw = gen.MakeSimilarity("Kia", "BMW");
  EXPECT_GT(kia_hyundai, kia_bmw);
  EXPECT_DOUBLE_EQ(gen.MakeSimilarity("Kia", "Kia"), 1.0);
}

TEST(CarDbTest, TupleSimilarityOracleBounds) {
  CarDbGenerator gen = SmallGen();
  Relation r = gen.Generate();
  for (size_t i = 0; i < 50; ++i) {
    double s = gen.TupleSimilarity(r.tuple(i), r.tuple(i + 50));
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_NEAR(gen.TupleSimilarity(r.tuple(0), r.tuple(0)), 1.0, 1e-12);
}

}  // namespace
}  // namespace aimq
