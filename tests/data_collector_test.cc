#include "webdb/data_collector.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Color", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

WebDatabase MakeDb(size_t n) {
  Relation r(TestSchema());
  const char* makes[] = {"Toyota", "Honda", "Ford", "Kia"};
  const char* colors[] = {"Red", "Blue"};
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(r.Append(Tuple({Value::Cat(makes[i % 4]),
                                Value::Cat(colors[i % 2]),
                                Value::Num(static_cast<double>(i))}))
                    .ok());
  }
  return WebDatabase("TestDB", std::move(r));
}

TEST(DataCollectorTest, SpansWholeSourceWithoutSampling) {
  WebDatabase db = MakeDb(40);
  DataCollectorOptions opts;
  DataCollector collector(opts);
  auto sample = collector.Collect(db);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumTuples(), 40u);
}

TEST(DataCollectorTest, PicksSmallestDropDown) {
  WebDatabase db = MakeDb(40);
  DataCollector collector(DataCollectorOptions{});
  ASSERT_TRUE(collector.Collect(db).ok());
  // Color has 2 values, Make has 4: Color needs fewer spanning probes.
  EXPECT_EQ(collector.last_spanning_attribute(), "Color");
  EXPECT_EQ(collector.last_spanning_values().size(), 2u);
}

TEST(DataCollectorTest, HonorsExplicitSpanningAttribute) {
  WebDatabase db = MakeDb(40);
  DataCollectorOptions opts;
  opts.spanning_attribute = "Make";
  DataCollector collector(opts);
  auto sample = collector.Collect(db);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(collector.last_spanning_attribute(), "Make");
  EXPECT_EQ(collector.last_spanning_values().size(), 4u);
  EXPECT_EQ(sample->NumTuples(), 40u);
  EXPECT_EQ(db.stats().queries_issued, 4u);
}

TEST(DataCollectorTest, SamplesDownToRequestedSize) {
  WebDatabase db = MakeDb(100);
  DataCollectorOptions opts;
  opts.sample_size = 25;
  DataCollector collector(opts);
  auto sample = collector.Collect(db);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumTuples(), 25u);
  // Sampled tuples are distinct rows of the source (Price is unique here).
  std::unordered_set<double> seen;
  for (const Tuple& t : sample->tuples()) {
    EXPECT_TRUE(seen.insert(t.At(2).AsNum()).second);
  }
}

TEST(DataCollectorTest, SampleSizeLargerThanSourceKeepsAll) {
  WebDatabase db = MakeDb(10);
  DataCollectorOptions opts;
  opts.sample_size = 1000;
  DataCollector collector(opts);
  auto sample = collector.Collect(db);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->NumTuples(), 10u);
}

TEST(DataCollectorTest, DeterministicPerSeed) {
  WebDatabase db = MakeDb(100);
  DataCollectorOptions opts;
  opts.sample_size = 20;
  opts.seed = 3;
  auto a = DataCollector(opts).Collect(db);
  auto b = DataCollector(opts).Collect(db);
  opts.seed = 4;
  auto c = DataCollector(opts).Collect(db);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->tuples(), b->tuples());
  EXPECT_NE(a->tuples(), c->tuples());
}

TEST(DataCollectorTest, ErrorsWithoutCategoricalAttribute) {
  auto schema = Schema::Make({{"Price", AttrType::kNumeric}});
  Relation r(*schema);
  ASSERT_TRUE(r.Append(Tuple({Value::Num(1)})).ok());
  WebDatabase db("NumOnly", std::move(r));
  DataCollector collector(DataCollectorOptions{});
  auto sample = collector.Collect(db);
  EXPECT_FALSE(sample.ok());
  EXPECT_EQ(sample.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DataCollectorTest, ProbeBudgetLimitsQueries) {
  WebDatabase db = MakeDb(40);
  DataCollectorOptions opts;
  opts.spanning_attribute = "Make";  // 4 spanning values
  opts.max_queries = 2;
  DataCollector collector(opts);
  auto sample = collector.Collect(db);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(db.stats().queries_issued, 2u);
  // Partial span: only the tuples of the first two spanning values.
  EXPECT_EQ(sample->NumTuples(), 20u);
}

TEST(DataCollectorTest, ZeroBudgetErrors) {
  WebDatabase db = MakeDb(10);
  DataCollectorOptions opts;
  opts.spanning_attribute = "Make";
  opts.max_queries = 0;  // 0 = unlimited, must still work
  auto full = DataCollector(opts).Collect(db);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->NumTuples(), 10u);
}

TEST(DataCollectorTest, UnknownSpanningAttributeErrors) {
  WebDatabase db = MakeDb(10);
  DataCollectorOptions opts;
  opts.spanning_attribute = "Bogus";
  EXPECT_FALSE(DataCollector(opts).Collect(db).ok());
}

}  // namespace
}  // namespace aimq
