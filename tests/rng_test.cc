#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <cmath>
#include <set>

namespace aimq {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 32; ++i) {
    differ += (a.Next() != b.Next());
  }
  EXPECT_GT(differ, 30);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMeanAndSpread) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, CategoricalAllZeroReturnsFirst) {
  Rng rng(31);
  EXPECT_EQ(rng.Categorical({0.0, 0.0, 0.0}), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsToN) {
  Rng rng(43);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  ASSERT_EQ(sample.size(), 5u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleZeroFromEmpty) {
  Rng rng(47);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

}  // namespace
}  // namespace aimq
