// Live-ingest acceptance property (DESIGN.md §5i): for any interleaving of
// ingest, knowledge refresh, and queries, every answer is bit-identical —
// answers, similarities, and RelaxationStats — to a from-scratch engine
// built at the query's *captured* (snapshot, knowledge) version. Exercised
// across the serving matrix: plain/packed storage × sharded/unsharded ×
// client threads {1, 8}, with a publisher thread swapping versions under
// the clients the whole time.

#include "live/live_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/cardb.h"

namespace aimq {
namespace {

struct LiveConfig {
  bool packed = false;
  size_t num_shards = 1;
  size_t client_threads = 1;
};

std::string ConfigName(const LiveConfig& c) {
  return std::string(c.packed ? "packed" : "plain") + "_shards" +
         std::to_string(c.num_shards) + "_threads" +
         std::to_string(c.client_threads);
}

ImpreciseQuery ModelQuery(const std::string& model) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat(model));
  return q;
}

// One observed answer: the captured version (kept alive by the shared_ptr),
// the query, and everything the engine returned.
struct Observation {
  std::shared_ptr<const ServingVersion> version;
  size_t query_index = 0;
  std::vector<RankedAnswer> answers;
  RelaxationStats stats;
};

// A from-scratch reference stack at one (snapshot, knowledge) version:
// plain unsharded WebDatabase over the version's rows, fresh engine over a
// copy of the version's knowledge edition.
struct ReferenceStack {
  std::unique_ptr<Relation> rows;
  std::unique_ptr<WebDatabase> db;
  std::unique_ptr<AimqEngine> engine;
};

class LiveIngestPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 240;
    spec.seed = 11;
    initial_ = new Relation(CarDbGenerator(spec).Generate());

    CarDbSpec delta_spec;
    delta_spec.num_tuples = 90;
    delta_spec.seed = 77;
    delta_ = new Relation(CarDbGenerator(delta_spec).Generate());

    options_ = new AimqOptions();
    options_->collector.sample_size = 120;
    options_->tsim = 0.4;
    options_->top_k = 8;
    // Determinism knobs: serial relaxation fan-out, no shared probe cache
    // (the property is about version capture, not cache accounting).
    options_->num_threads = 1;
    options_->probe_cache_capacity = 0;

    WebDatabase mine_db("CarDB", *initial_);
    auto knowledge = BuildKnowledge(mine_db, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete delta_;
    delete initial_;
    knowledge_ = nullptr;
    options_ = nullptr;
    delta_ = nullptr;
    initial_ = nullptr;
  }

  // Builds the initial source in the config's storage mode.
  static std::unique_ptr<WebDatabase> MakeInitialSource(bool packed) {
    if (!packed) {
      return std::make_unique<WebDatabase>("CarDB", *initial_);
    }
    ColumnarBuilder::Options bopts;
    bopts.store.block_size = 64;
    auto builder = ColumnarBuilder::Create(initial_->schema(), bopts);
    EXPECT_TRUE(builder.ok());
    for (size_t i = 0; i < initial_->NumTuples(); ++i) {
      EXPECT_TRUE((*builder)->AppendRow(initial_->tuple(i)).ok());
    }
    auto snapshot = (*builder)->Finish();
    EXPECT_TRUE(snapshot.ok());
    return std::make_unique<WebDatabase>("CarDB", *snapshot);
  }

  // Verifies every observation against a memoized from-scratch reference at
  // its captured version; reports the number of distinct versions seen.
  static void VerifyObservations(const std::vector<Observation>& observations,
                                 const std::vector<ImpreciseQuery>& queries,
                                 size_t* versions_seen) {
    std::map<std::pair<uint64_t, uint64_t>, ReferenceStack> references;
    for (const Observation& ob : observations) {
      const auto key = std::make_pair(ob.version->snapshot_version,
                                      ob.version->knowledge_version);
      ReferenceStack& ref = references[key];
      if (ref.engine == nullptr) {
        // Rebuild the version's rows from scratch into a plain unsharded
        // stack — the storage/sharding mode the answers must be invariant
        // to.
        ref.rows = std::make_unique<Relation>(initial_->schema());
        const auto& cols = *ob.version->source->columnar();
        for (size_t row = 0; row < cols.NumRows(); ++row) {
          ref.rows->AppendUnchecked(cols.MaterializeTuple(row));
        }
        ref.db = std::make_unique<WebDatabase>("CarDB", *ref.rows);
        ref.engine = std::make_unique<AimqEngine>(
            ref.db.get(), ob.version->knowledge->knowledge, *options_);
      }
      RelaxationStats ref_stats;
      auto expected =
          ref.engine->Answer(queries[ob.query_index],
                             RelaxationStrategy::kGuided, &ref_stats);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      const std::string where =
          "version (" + std::to_string(key.first) + "," +
          std::to_string(key.second) + ") query " +
          std::to_string(ob.query_index);
      ASSERT_EQ(ob.answers.size(), expected->size()) << where;
      for (size_t i = 0; i < expected->size(); ++i) {
        ASSERT_EQ(ob.answers[i].tuple, (*expected)[i].tuple)
            << where << " answer " << i;
        ASSERT_EQ(ob.answers[i].similarity, (*expected)[i].similarity)
            << where << " answer " << i;
      }
      EXPECT_EQ(ob.stats.queries_issued.load(),
                ref_stats.queries_issued.load())
          << where;
      EXPECT_EQ(ob.stats.tuples_extracted.load(),
                ref_stats.tuples_extracted.load())
          << where;
      EXPECT_EQ(ob.stats.tuples_relevant.load(),
                ref_stats.tuples_relevant.load())
          << where;
      EXPECT_EQ(ob.stats.cache_hits.load(), ref_stats.cache_hits.load())
          << where;
      EXPECT_EQ(ob.stats.deduped_probes.load(),
                ref_stats.deduped_probes.load())
          << where;
      EXPECT_EQ(ob.stats.max_relax_depth.load(),
                ref_stats.max_relax_depth.load())
          << where;
    }
    *versions_seen = references.size();
  }

  static void RunConfig(const LiveConfig& config) {
    SCOPED_TRACE(ConfigName(config));
    std::unique_ptr<WebDatabase> source = MakeInitialSource(config.packed);
    ASSERT_NE(source, nullptr);
    ASSERT_EQ(source->columnar()->packed(), config.packed);

    LiveOptions lopts;
    lopts.engine = *options_;
    lopts.shards.num_shards = config.num_shards;
    lopts.shards.packed_shards = config.packed;
    auto created = LiveEngine::Create(source.get(), *knowledge_, lopts);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    std::unique_ptr<LiveEngine> live = created.TakeValue();
    if (config.num_shards > 1) {
      ASSERT_TRUE(live->Acquire()->shard_build_status.ok())
          << live->Acquire()->shard_build_status.ToString();
    }

    const std::vector<ImpreciseQuery> queries = {
        ModelQuery("Camry"), ModelQuery("Civic"), ModelQuery("Altima")};

    // Publisher thread: an ingest/publish/refresh script racing the
    // clients — three snapshot publishes and one knowledge refresh.
    std::atomic<bool> publisher_done{false};
    std::thread publisher([&] {
      for (int batch = 0; batch < 3; ++batch) {
        std::vector<Tuple> rows;
        for (int i = 0; i < 30; ++i) {
          rows.push_back(delta_->tuple(batch * 30 + i));
        }
        ASSERT_TRUE(live->Ingest(std::move(rows)).ok());
        auto published = live->PublishSnapshot();
        ASSERT_TRUE(published.ok()) << published.status().ToString();
        if (batch == 1) {
          auto refreshed = live->RefreshKnowledge();
          ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
        }
      }
      publisher_done.store(true);
    });

    // Client threads: capture a version, answer on it, record everything.
    // Clients keep querying until the publisher finishes so the
    // interleaving covers every version transition.
    std::mutex record_mu;
    std::vector<Observation> observations;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < config.client_threads; ++t) {
      clients.emplace_back([&, t] {
        size_t round = 0;
        do {
          Observation ob;
          ob.query_index = (t + round) % queries.size();
          ob.version = live->Acquire();
          bool truncated = false;
          auto answers = ob.version->engine->Answer(
              queries[ob.query_index], RelaxationStrategy::kGuided,
              &ob.stats, nullptr, &truncated);
          ASSERT_TRUE(answers.ok()) << answers.status().ToString();
          ASSERT_FALSE(truncated);
          ob.answers = std::move(*answers);
          {
            std::lock_guard<std::mutex> lock(record_mu);
            observations.push_back(std::move(ob));
          }
          ++round;
        } while (!publisher_done.load() || round < queries.size());
      });
    }
    publisher.join();
    for (std::thread& t : clients) t.join();

    ASSERT_GE(observations.size(), config.client_threads * queries.size());
    size_t versions_seen = 0;
    VerifyObservations(observations, queries, &versions_seen);
    EXPECT_GE(versions_seen, 1u);
    // The final version reflects the whole script.
    const auto final_version = live->Acquire();
    EXPECT_EQ(final_version->snapshot_version, 3u);
    EXPECT_EQ(final_version->knowledge_version, 2u);
    EXPECT_EQ(final_version->num_rows, initial_->NumTuples() + 90);
  }

  static Relation* initial_;
  static Relation* delta_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

Relation* LiveIngestPropertyTest::initial_ = nullptr;
Relation* LiveIngestPropertyTest::delta_ = nullptr;
AimqOptions* LiveIngestPropertyTest::options_ = nullptr;
MinedKnowledge* LiveIngestPropertyTest::knowledge_ = nullptr;

TEST_F(LiveIngestPropertyTest, PlainUnshardedSingleClient) {
  RunConfig({/*packed=*/false, /*num_shards=*/1, /*client_threads=*/1});
}

TEST_F(LiveIngestPropertyTest, PlainUnshardedEightClients) {
  RunConfig({/*packed=*/false, /*num_shards=*/1, /*client_threads=*/8});
}

TEST_F(LiveIngestPropertyTest, PlainShardedEightClients) {
  RunConfig({/*packed=*/false, /*num_shards=*/4, /*client_threads=*/8});
}

TEST_F(LiveIngestPropertyTest, PackedUnshardedSingleClient) {
  RunConfig({/*packed=*/true, /*num_shards=*/1, /*client_threads=*/1});
}

TEST_F(LiveIngestPropertyTest, PackedShardedEightClients) {
  RunConfig({/*packed=*/true, /*num_shards=*/4, /*client_threads=*/8});
}

TEST_F(LiveIngestPropertyTest, PlainShardedSingleClient) {
  RunConfig({/*packed=*/false, /*num_shards=*/4, /*client_threads=*/1});
}

}  // namespace
}  // namespace aimq
