// The bit-identity contract of the dictionary-encoded storage core: every
// coded evaluator must reproduce its row-store (Value-based) counterpart
// exactly — same row sets, same partitions, and the same IEEE doubles, not
// merely approximately equal scores.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "afd/partition.h"
#include "core/engine.h"
#include "core/knowledge.h"
#include "core/sim.h"
#include "datagen/cardb.h"
#include "datagen/censusdb.h"
#include "query/selection_query.h"
#include "util/rng.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

Relation CarSample(size_t n, uint64_t seed) {
  CarDbSpec spec;
  spec.num_tuples = n;
  spec.seed = seed;
  return CarDbGenerator(spec).Generate();
}

// --- Probe evaluation: coded ExecuteRows vs the row-store scan ------------

class ProbeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<WebDatabase>("CarDB", CarSample(4000, 17));
  }

  void ExpectSameRows(const SelectionQuery& q) {
    auto coded = db_->ExecuteRows(q);
    ASSERT_TRUE(coded.ok()) << coded.status().ToString();
    auto scanned = q.Evaluate(db_->hidden_relation_for_testing());
    ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
    ASSERT_EQ(coded->size(), scanned->size()) << q.ToString();
    for (size_t i = 0; i < coded->size(); ++i) {
      EXPECT_EQ((*coded)[i], static_cast<uint32_t>((*scanned)[i]))
          << q.ToString() << " row " << i;
    }
  }

  std::unique_ptr<WebDatabase> db_;
};

TEST_F(ProbeEquivalenceTest, CategoricalEquality) {
  SelectionQuery q;
  q.AddPredicate(Predicate::Eq("Make", Value::Cat("Toyota")));
  ExpectSameRows(q);
}

TEST_F(ProbeEquivalenceTest, AbsentValueMatchesNothing) {
  SelectionQuery q;
  q.AddPredicate(Predicate::Eq("Make", Value::Cat("NoSuchMake")));
  auto coded = db_->ExecuteRows(q);
  ASSERT_TRUE(coded.ok());
  EXPECT_TRUE(coded->empty());
  ExpectSameRows(q);
}

TEST_F(ProbeEquivalenceTest, NumericRanges) {
  for (CompareOp op :
       {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    SelectionQuery q;
    q.AddPredicate(Predicate("Price", op, Value::Num(15000)));
    ExpectSameRows(q);
  }
}

TEST_F(ProbeEquivalenceTest, ConjunctionsAndEmptyQuery) {
  SelectionQuery all;  // no predicates: every row
  ExpectSameRows(all);

  SelectionQuery q;
  q.AddPredicate(Predicate::Eq("Make", Value::Cat("Honda")));
  q.AddPredicate(Predicate("Mileage", CompareOp::kLe, Value::Num(90000)));
  q.AddPredicate(Predicate("Price", CompareOp::kGe, Value::Num(4000)));
  ExpectSameRows(q);
}

TEST_F(ProbeEquivalenceTest, RandomConjunctions) {
  Rng rng(99);
  const Relation& data = db_->hidden_relation_for_testing();
  const Schema& schema = data.schema();
  for (int trial = 0; trial < 40; ++trial) {
    SelectionQuery q;
    size_t num_preds = 1 + rng.Uniform(3);
    for (size_t p = 0; p < num_preds; ++p) {
      size_t attr = rng.Uniform(schema.NumAttributes());
      const Tuple& t = data.tuple(rng.Uniform(data.NumTuples()));
      const std::string& name = schema.attribute(attr).name;
      if (schema.attribute(attr).type == AttrType::kCategorical) {
        q.AddPredicate(Predicate::Eq(name, t.At(attr)));
      } else {
        static const CompareOp kOps[] = {CompareOp::kEq, CompareOp::kLt,
                                         CompareOp::kLe, CompareOp::kGt,
                                         CompareOp::kGe};
        q.AddPredicate(Predicate(name, kOps[rng.Uniform(5)], t.At(attr)));
      }
    }
    ExpectSameRows(q);
  }
}

// --- Partitions: dense counting on codes vs Value-keyed grouping ----------

TEST(PartitionEquivalenceTest, CodedMatchesRowStoreOnCarDb) {
  Relation sample = CarSample(3000, 5);
  auto cols = sample.columnar();
  for (size_t a = 0; a < sample.schema().NumAttributes(); ++a) {
    StrippedPartition coded = StrippedPartition::FromColumnCoded(*cols, a);
    StrippedPartition rows = StrippedPartition::FromColumnRowStore(sample, a);
    ASSERT_EQ(coded.num_rows(), rows.num_rows());
    ASSERT_EQ(coded.classes(), rows.classes()) << "attr " << a;
    EXPECT_EQ(coded.NumClasses(), rows.NumClasses());
    EXPECT_EQ(coded.NumCoveredRows(), rows.NumCoveredRows());
  }
}

TEST(PartitionEquivalenceTest, CodedMatchesRowStoreOnCensusDb) {
  CensusDbSpec spec;
  spec.num_tuples = 3000;
  spec.seed = 5;
  Relation sample = CensusDbGenerator(spec).Generate().relation;
  auto cols = sample.columnar();
  for (size_t a = 0; a < sample.schema().NumAttributes(); ++a) {
    StrippedPartition coded = StrippedPartition::FromColumnCoded(*cols, a);
    StrippedPartition rows = StrippedPartition::FromColumnRowStore(sample, a);
    ASSERT_EQ(coded.classes(), rows.classes()) << "attr " << a;
  }
}

// --- Sim(Q, t): coded scoring vs the Value-based evaluator ----------------

class SimEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sample_ = new Relation(CarSample(2500, 23));
    AimqOptions options;
    auto knowledge = BuildKnowledgeFromSample(*sample_, options);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete sample_;
    knowledge_ = nullptr;
    sample_ = nullptr;
  }

  static Relation* sample_;
  static MinedKnowledge* knowledge_;
};

Relation* SimEquivalenceTest::sample_ = nullptr;
MinedKnowledge* SimEquivalenceTest::knowledge_ = nullptr;

TEST_F(SimEquivalenceTest, QueryScoresAreBitIdentical) {
  const Schema& schema = sample_->schema();
  SimilarityFunction sim(&schema, &knowledge_->ordering, &knowledge_->vsim);
  CodedSimilarityFunction coded(&sim, sample_->columnar());

  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    ImpreciseQuery q;
    const Tuple& t = sample_->tuple(rng.Uniform(sample_->NumTuples()));
    size_t num_bindings = 1 + rng.Uniform(3);
    for (size_t b = 0; b < num_bindings; ++b) {
      size_t attr = rng.Uniform(schema.NumAttributes());
      q.Bind(schema.attribute(attr).name, t.At(attr));
    }
    // One trial in three binds a value the sample never saw.
    if (trial % 3 == 0) q.Bind("Color", Value::Cat("UnseenChartreuse"));

    auto enc = coded.EncodeQuery(q);
    ASSERT_TRUE(enc.ok()) << enc.status().ToString();
    for (uint32_t row = 0; row < sample_->NumTuples(); row += 37) {
      auto expected = sim.QueryTupleSim(q, sample_->tuple(row));
      ASSERT_TRUE(expected.ok());
      double got = coded.Score(*enc, row);
      // Exact double equality: the coded path must execute the identical
      // IEEE operation sequence, not a reassociated one.
      ASSERT_EQ(got, *expected) << "trial " << trial << " row " << row;
    }
  }
}

TEST_F(SimEquivalenceTest, AnchorScoresAreBitIdentical) {
  const Schema& schema = sample_->schema();
  SimilarityFunction sim(&schema, &knowledge_->ordering, &knowledge_->vsim);
  CodedSimilarityFunction coded(&sim, sample_->columnar());

  std::vector<size_t> all_attrs;
  for (size_t a = 0; a < schema.NumAttributes(); ++a) all_attrs.push_back(a);

  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    uint32_t anchor_row =
        static_cast<uint32_t>(rng.Uniform(sample_->NumTuples()));
    const Tuple& anchor = sample_->tuple(anchor_row);
    auto enc_tuple = coded.EncodeAnchor(anchor, all_attrs);
    auto enc_row = coded.EncodeAnchorRow(anchor_row, all_attrs);
    for (uint32_t row = 0; row < sample_->NumTuples(); row += 53) {
      double expected =
          sim.TupleTupleSim(anchor, sample_->tuple(row), all_attrs);
      ASSERT_EQ(coded.Score(enc_tuple, row), expected) << "row " << row;
      ASSERT_EQ(coded.Score(enc_row, row), expected) << "row " << row;
    }
  }
}

// --- End-to-end: the engine's answers are reproducible bit-for-bit --------

class EngineDeterminismTest : public ::testing::Test {
 protected:
  static std::vector<RankedAnswer> RunOnce(const ImpreciseQuery& q) {
    CarDbSpec spec;
    spec.num_tuples = 5000;
    spec.seed = 41;
    WebDatabase db("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 2500;
    options.top_k = 10;
    auto knowledge = BuildKnowledge(db, options);
    EXPECT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    AimqEngine engine(&db, knowledge.TakeValue(), options);
    auto answers = engine.Answer(q);
    EXPECT_TRUE(answers.ok()) << answers.status().ToString();
    return answers.ok() ? *answers : std::vector<RankedAnswer>{};
  }

  // Every ranked answer's similarity must equal the Value-based evaluator's
  // verdict on the materialized tuple, exactly.
  static void ExpectValuePathScores(const ImpreciseQuery& q,
                                    const std::vector<RankedAnswer>& answers) {
    CarDbSpec spec;
    spec.num_tuples = 5000;
    spec.seed = 41;
    WebDatabase db("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 2500;
    auto knowledge = BuildKnowledge(db, options);
    ASSERT_TRUE(knowledge.ok());
    MinedKnowledge k = knowledge.TakeValue();
    SimilarityFunction sim(&db.schema(), &k.ordering, &k.vsim);
    for (const RankedAnswer& a : answers) {
      auto expected = sim.QueryTupleSim(q, a.tuple);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(a.similarity, *expected);
    }
  }
};

TEST_F(EngineDeterminismTest, AnswersAreBitIdenticalAcrossRuns) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  std::vector<RankedAnswer> first = RunOnce(q);
  std::vector<RankedAnswer> second = RunOnce(q);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].tuple == second[i].tuple) << "rank " << i;
    ASSERT_EQ(first[i].similarity, second[i].similarity) << "rank " << i;
  }
  ExpectValuePathScores(q, first);
}

TEST_F(EngineDeterminismTest, MinedKnowledgeIsBitIdenticalAcrossRuns) {
  auto mine = [] {
    AimqOptions options;
    auto k = BuildKnowledgeFromSample(CarSample(2500, 13), options);
    EXPECT_TRUE(k.ok());
    return k.TakeValue();
  };
  MinedKnowledge a = mine();
  MinedKnowledge b = mine();
  ASSERT_EQ(a.dependencies.afds.size(), b.dependencies.afds.size());
  for (size_t i = 0; i < a.dependencies.afds.size(); ++i) {
    EXPECT_EQ(a.dependencies.afds[i].lhs, b.dependencies.afds[i].lhs);
    EXPECT_EQ(a.dependencies.afds[i].rhs, b.dependencies.afds[i].rhs);
    EXPECT_EQ(a.dependencies.afds[i].error, b.dependencies.afds[i].error);
  }
  ASSERT_EQ(a.dependencies.keys.size(), b.dependencies.keys.size());
  for (size_t i = 0; i < a.dependencies.keys.size(); ++i) {
    EXPECT_EQ(a.dependencies.keys[i].attrs, b.dependencies.keys[i].attrs);
    EXPECT_EQ(a.dependencies.keys[i].error, b.dependencies.keys[i].error);
  }
  EXPECT_EQ(a.WimpVector(), b.WimpVector());
}

}  // namespace
}  // namespace aimq
