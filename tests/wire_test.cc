// Wire-protocol encoding: Status must round-trip losslessly (code, message,
// context) through its JSON form — a deadline error raised deep in the
// engine reads identically on the far side of the socket.

#include "service/wire.h"

#include <gtest/gtest.h>

#include "relation/schema.h"

namespace aimq {
namespace {

TEST(WireStatusTest, EveryCodeRoundTripsLosslessly) {
  struct Case {
    Status status;
  };
  const Case kCases[] = {
      {Status::OK()},
      {Status::InvalidArgument("bad query")},
      {Status::NotFound("no such attribute")},
      {Status::OutOfRange("index 9")},
      {Status::AlreadyExists("duplicate")},
      {Status::FailedPrecondition("not started")},
      {Status::IOError("socket closed")},
      {Status::Unimplemented("hybrid ops")},
      {Status::Internal("corrupt state")},
      {Status::Cancelled("client went away")},
      {Status::DeadlineExceeded("deadline expired")
           .WithContext("relaxation fan-out")},
      {Status::Unavailable("queue full").WithContext("queue_depth=64")},
  };
  for (const Case& c : kCases) {
    const Json encoded = StatusToJson(c.status);
    // The wire form must survive an actual serialize/parse cycle, not just
    // an in-memory copy.
    auto reparsed = Json::Parse(encoded.Dump());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    Status decoded;
    ASSERT_TRUE(StatusFromJson(*reparsed, &decoded).ok());
    EXPECT_EQ(decoded, c.status) << c.status.ToString();
  }
}

TEST(WireStatusTest, MessageWithQuotesAndNewlinesSurvives) {
  const Status original =
      Status::InvalidArgument("expected '\"' got\n\ttab").WithContext("L1\\c2");
  auto reparsed = Json::Parse(StatusToJson(original).Dump());
  ASSERT_TRUE(reparsed.ok());
  Status decoded;
  ASSERT_TRUE(StatusFromJson(*reparsed, &decoded).ok());
  EXPECT_EQ(decoded, original);
}

TEST(WireStatusTest, UnknownCodeNameIsRejected) {
  auto json = Json::Parse(R"js({"code":"NoSuchCode","message":"x"})js");
  ASSERT_TRUE(json.ok());
  Status decoded;
  Status parse = StatusFromJson(*json, &decoded);
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.code(), StatusCode::kInvalidArgument);
}

TEST(WireStatusTest, NonObjectIsRejected) {
  Status decoded;
  EXPECT_FALSE(StatusFromJson(Json::Str("Ok"), &decoded).ok());
  EXPECT_FALSE(StatusFromJson(Json::Arr(), &decoded).ok());
}

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

TEST(WireTupleTest, EncodesValuesBySchemaOrderAndKind) {
  Schema s = CarSchema();
  Tuple t({Value::Cat("Toyota"), Value::Cat("Camry"), Value::Num(8500)});
  const Json j = TupleToJson(s, t);
  EXPECT_EQ(j.Dump(),
            R"js({"Make":"Toyota","Model":"Camry","Price":8500})js");
}

TEST(WireTupleTest, NullValuesEncodeAsJsonNull) {
  Schema s = CarSchema();
  Tuple t({Value::Cat("Ford"), Value(), Value::Num(100)});
  const Json j = TupleToJson(s, t);
  EXPECT_EQ(j.Dump(), R"js({"Make":"Ford","Model":null,"Price":100})js");
}

TEST(WireTupleTest, RankedAnswerCarriesSimilarity) {
  Schema s = CarSchema();
  RankedAnswer a;
  a.tuple = Tuple({Value::Cat("Toyota"), Value::Cat("Camry"),
                   Value::Num(8500)});
  a.similarity = 0.75;
  const Json j = RankedAnswerToJson(s, a);
  const Json* sim = j.Find("similarity");
  ASSERT_NE(sim, nullptr);
  EXPECT_DOUBLE_EQ(sim->AsNum(), 0.75);
  ASSERT_NE(j.Find("tuple"), nullptr);
}

TEST(WireRequestTest, ParsesQueryRequest) {
  auto req = ParseWireRequest(
      R"js({"op":"query","q":"Q(Model like 'Camry')","deadline_ms":250,"id":7})js");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, WireRequest::Op::kQuery);
  EXPECT_EQ(req->query_text, "Q(Model like 'Camry')");
  EXPECT_EQ(req->deadline_ms, 250u);
  EXPECT_TRUE(req->has_id);
  EXPECT_DOUBLE_EQ(req->id, 7.0);
}

TEST(WireRequestTest, ParsesPingAndStats) {
  auto ping = ParseWireRequest(R"js({"op":"ping"})js");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->op, WireRequest::Op::kPing);
  EXPECT_FALSE(ping->has_id);
  auto stats = ParseWireRequest(R"js({"op":"stats"})js");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->op, WireRequest::Op::kStats);
}

TEST(WireRequestTest, ParsesMetricsOp) {
  auto req = ParseWireRequest(R"js({"op":"metrics","id":9})js");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, WireRequest::Op::kMetrics);
  EXPECT_TRUE(req->has_id);
  EXPECT_DOUBLE_EQ(req->id, 9.0);
}

TEST(WireRequestTest, ParsesOptionalRequestId) {
  auto req = ParseWireRequest(
      R"js({"op":"query","q":"Q(Model like 'Camry')","request_id":42})js");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->request_id, 42u);
  auto without = ParseWireRequest(
      R"js({"op":"query","q":"Q(Model like 'Camry')"})js");
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->request_id, 0u);  // 0 = service-assigned
  EXPECT_FALSE(ParseWireRequest(
                   R"js({"op":"query","q":"x","request_id":-1})js")
                   .ok());
  EXPECT_FALSE(ParseWireRequest(
                   R"js({"op":"query","q":"x","request_id":"abc"})js")
                   .ok());
}

TEST(WireRequestTest, RejectsMalformedRequests) {
  const char* kBad[] = {
      "",                                   // empty line
      "not json",                           // not JSON at all
      "[1,2]",                              // not an object
      R"js({"q":"Q(Model like x)"})js",         // missing op
      R"js({"op":"flush"})js",                  // unknown op
      R"js({"op":"query"})js",                  // query without q
      R"js({"op":"query","q":"x","deadline_ms":-5})js",  // negative deadline
      R"js({"op":"query","q":"x","id":"seven"})js",      // non-numeric id
  };
  for (const char* line : kBad) {
    EXPECT_FALSE(ParseWireRequest(line).ok()) << line;
  }
}

TEST(WireRequestTest, ErrorResponseEchoesId) {
  auto req =
      ParseWireRequest(R"js({"op":"query","q":"Q(Bogus like x)","id":3})js");
  ASSERT_TRUE(req.ok());
  const Json out =
      MakeErrorResponse(*req, Status::NotFound("unknown attribute Bogus"));
  EXPECT_EQ(
      out.Dump(),
      R"js({"id":3,"ok":false,"status":{"code":"NotFound","message":"unknown attribute Bogus"}})js");
}

}  // namespace
}  // namespace aimq
