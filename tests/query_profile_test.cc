// QueryProfile tests: the phase partition identity, dominant-phase
// attribution, JSON shape, the profile the service fills per request, the
// explain wire op end to end, and slow-log budget attribution.

#include "obs/query_profile.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "datagen/cardb.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/socket.h"

namespace aimq {
namespace {

TEST(QueryProfileTest, FinishPhasesDerivesOtherAsRemainder) {
  obs::QueryProfile p;
  p.total_seconds = 1.0;
  p.queue_seconds = 0.1;
  p.base_set_seconds = 0.2;
  p.relax_seconds = 0.3;
  p.rank_seconds = 0.1;
  p.FinishPhases();
  EXPECT_NEAR(p.other_seconds, 0.3, 1e-12);
  EXPECT_NEAR(p.queue_seconds + p.base_set_seconds + p.relax_seconds +
                  p.rank_seconds + p.other_seconds,
              p.total_seconds, 1e-12);
}

TEST(QueryProfileTest, FinishPhasesStretchesTotalWhenTimersExceedWall) {
  // Sub-µs requests can have engine timers summing past the wall clock;
  // the identity must still hold, never a negative `other`.
  obs::QueryProfile p;
  p.total_seconds = 0.5;
  p.queue_seconds = 0.2;
  p.base_set_seconds = 0.2;
  p.relax_seconds = 0.2;
  p.FinishPhases();
  EXPECT_DOUBLE_EQ(p.other_seconds, 0.0);
  EXPECT_DOUBLE_EQ(p.total_seconds, 0.6);
}

TEST(QueryProfileTest, DominantPhaseNamesTheLargestShare) {
  obs::QueryProfile p;
  EXPECT_EQ(p.DominantPhase(), "none");
  p.total_seconds = 1.0;
  p.queue_seconds = 0.1;
  p.relax_seconds = 0.6;
  p.rank_seconds = 0.2;
  p.FinishPhases();
  EXPECT_EQ(p.DominantPhase(), "relax");
  p.queue_seconds = 0.9;
  p.relax_seconds = 0.05;
  p.rank_seconds = 0.0;
  p.total_seconds = 1.0;
  p.FinishPhases();
  EXPECT_EQ(p.DominantPhase(), "queue");
}

TEST(QueryProfileTest, ToJsonCarriesPhasesAndDeltas) {
  obs::QueryProfile p;
  p.total_seconds = 0.010;
  p.relax_seconds = 0.006;
  p.probes_issued = 12;
  p.cache_hits = 5;
  p.relax_depth = 3;
  p.shard_rows = {{0, 100}, {1, 80}};
  p.blocks_decoded = 7;
  p.coalesced_probes = 2;
  p.has_deltas = true;
  p.FinishPhases();
  const Json json = p.ToJson();
  EXPECT_EQ(json.Find("dominant_phase")->AsStr(), "relax");
  EXPECT_DOUBLE_EQ(json.Find("relax_depth")->AsNum(), 3.0);
  EXPECT_DOUBLE_EQ(json.Find("blocks_decoded")->AsNum(), 7.0);
  const Json* probes = json.Find("probes");
  ASSERT_NE(probes, nullptr);
  EXPECT_DOUBLE_EQ(probes->Find("issued")->AsNum(), 12.0);
  EXPECT_DOUBLE_EQ(probes->Find("coalesced")->AsNum(), 2.0);
  const Json* shards = json.Find("shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_TRUE(shards->is_array());
}

TEST(WireExplainTest, ParseExplainOp) {
  auto parsed = ParseWireRequest(
      "{\"op\":\"explain\",\"q\":\"Q(Model like Camry)\",\"deadline_ms\":100,"
      "\"tenant\":\"acme\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->op, WireRequest::Op::kExplain);
  EXPECT_EQ(parsed->query_text, "Q(Model like Camry)");
  EXPECT_EQ(parsed->deadline_ms, 100u);
  EXPECT_EQ(parsed->tenant, "acme");
  // Like query, explain requires "q".
  EXPECT_FALSE(ParseWireRequest("{\"op\":\"explain\"}").ok());
}

class ExplainServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 23;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 300;
    options.tsim = 0.4;
    options.top_k = 5;
    options.num_threads = 2;
    auto knowledge = BuildKnowledge(*db_, options);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.num_shards = 3;
    sopts.slow_query_ms = 1e-6;  // capture everything in the slow log
    service_ = new AimqService(db_, knowledge.TakeValue(), options, sopts);
    ASSERT_TRUE(service_->Start().ok());
    server_ = new AimqServer(service_, /*port=*/0);
    ASSERT_TRUE(server_->Start().ok());
  }
  static void TearDownTestSuite() {
    server_->Stop();
    service_->Stop();
    delete server_;
    delete service_;
    delete db_;
    server_ = nullptr;
    service_ = nullptr;
    db_ = nullptr;
  }

  static Json RoundTrip(const std::string& line) {
    auto fd = TcpConnect("localhost", server_->port());
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    if (!fd.ok()) return Json::Null();
    LineReader reader(*fd);
    EXPECT_TRUE(SendAll(*fd, line + "\n").ok());
    auto response = reader.ReadLine();
    CloseFd(*fd);
    EXPECT_TRUE(response.ok() && response->has_value());
    if (!response.ok() || !response->has_value()) return Json::Null();
    auto json = Json::Parse(**response);
    EXPECT_TRUE(json.ok()) << json.status().ToString();
    return json.ok() ? json.TakeValue() : Json::Null();
  }

  static WebDatabase* db_;
  static AimqService* service_;
  static AimqServer* server_;
};

WebDatabase* ExplainServiceTest::db_ = nullptr;
AimqService* ExplainServiceTest::service_ = nullptr;
AimqServer* ExplainServiceTest::server_ = nullptr;

TEST_F(ExplainServiceTest, EveryResponseCarriesAConsistentProfile) {
  ImpreciseQuery query;
  query.Bind("Make", Value::Cat("Toyota"));
  auto response = service_->Execute(query);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const obs::QueryProfile& p = response->profile;
  // The phase partition identity against the measured latency.
  EXPECT_NEAR(p.queue_seconds + p.base_set_seconds + p.relax_seconds +
                  p.rank_seconds + p.other_seconds,
              p.total_seconds, 1e-9);
  EXPECT_GE(p.total_seconds, response->queue_seconds);
  EXPECT_GT(p.probes_issued + p.cache_hits + p.deduped_probes, 0u);
  EXPECT_NE(p.DominantPhase(), "none");
  // Plain queries never carry cross-request deltas.
  EXPECT_FALSE(p.has_deltas);
  EXPECT_TRUE(p.shard_rows.empty());
}

TEST_F(ExplainServiceTest, ExplainOpReturnsProfileSummingToLatency) {
  const Json json = RoundTrip(
      "{\"op\":\"explain\",\"q\":\"Q(Make like Honda)\",\"id\":9}");
  ASSERT_TRUE(json.is_object());
  ASSERT_NE(json.Find("ok"), nullptr);
  EXPECT_TRUE(json.Find("ok")->AsBool());
  EXPECT_DOUBLE_EQ(json.Find("id")->AsNum(), 9.0);
  ASSERT_NE(json.Find("answers"), nullptr);
  const Json* profile = json.Find("profile");
  ASSERT_NE(profile, nullptr) << json.Dump();
  const Json* phases = profile->Find("phases");
  ASSERT_NE(phases, nullptr);
  const double sum_ms =
      phases->Find("queue_ms")->AsNum() + phases->Find("base_set_ms")->AsNum() +
      phases->Find("relax_ms")->AsNum() + phases->Find("rank_ms")->AsNum() +
      phases->Find("other_ms")->AsNum();
  const double total_ms = profile->Find("total_ms")->AsNum();
  EXPECT_NEAR(sum_ms, total_ms, 1e-6 + total_ms * 1e-9);
  // total_ms is the request's measured latency (FinishPhases may stretch it
  // by clock granularity, never shrink it below elapsed engine time).
  EXPECT_GE(total_ms, 0.0);
  EXPECT_LE(std::abs(total_ms - json.Find("elapsed_ms")->AsNum()),
            1.0 + total_ms);
  // Sharded service: the explain handler filled per-shard row deltas.
  const Json* shards = profile->Find("shards");
  ASSERT_NE(shards, nullptr) << profile->Dump();
  EXPECT_TRUE(shards->is_array());
  ASSERT_NE(profile->Find("dominant_phase"), nullptr);
  ASSERT_NE(profile->Find("relax_depth"), nullptr);
}

TEST_F(ExplainServiceTest, PlainQueryOpCarriesNoProfile) {
  const Json json =
      RoundTrip("{\"op\":\"query\",\"q\":\"Q(Make like Honda)\"}");
  ASSERT_TRUE(json.is_object());
  EXPECT_TRUE(json.Find("ok")->AsBool());
  EXPECT_EQ(json.Find("profile"), nullptr);
}

TEST_F(ExplainServiceTest, SlowLogCarriesDepthAndBudgetAttribution) {
  ImpreciseQuery query;
  query.Bind("Make", Value::Cat("Toyota"));
  ASSERT_TRUE(service_->Execute(query).ok());
  const std::vector<Json> slow = service_->SlowQueries();
  ASSERT_FALSE(slow.empty());
  const Json& record = slow.back();
  ASSERT_NE(record.Find("relax_depth"), nullptr) << record.Dump();
  const Json* attribution = record.Find("budget_attribution");
  ASSERT_NE(attribution, nullptr);
  const std::string phase = attribution->AsStr();
  EXPECT_TRUE(phase == "queue" || phase == "base_set" || phase == "relax" ||
              phase == "rank" || phase == "other")
      << phase;
}

TEST_F(ExplainServiceTest, RelaxDepthFeedsServiceHistogram) {
  ImpreciseQuery query;
  query.Bind("Make", Value::Cat("Toyota"));
  ASSERT_TRUE(service_->Execute(query).ok());
  uint64_t total = 0;
  for (uint64_t n : service_->metrics().RelaxDepthSnapshot()) total += n;
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace aimq
