#include "similarity/similarity_graph.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Segment", AttrType::kCategorical}})
      .ValueOrDie();
}

Relation TestData() {
  Relation r(CarSchema());
  auto add = [&](const char* make, const char* seg) {
    ASSERT_TRUE(
        r.Append(Tuple({Value::Cat(make), Value::Cat(seg)})).ok());
  };
  add("Toyota", "sedan");
  add("Toyota", "suv");
  add("Honda", "sedan");
  add("Honda", "suv");
  add("Harley", "bike");
  add("Harley", "bike");
  return r;
}

ValueSimilarityModel MineModel() {
  Relation r = TestData();
  auto model = SimilarityMiner().Mine(r, {0.5, 0.5});
  EXPECT_TRUE(model.ok());
  return model.TakeValue();
}

TEST(SimilarityGraphTest, ThresholdPrunesEdges) {
  ValueSimilarityModel model = MineModel();
  SimilarityGraph all = SimilarityGraph::Extract(model, 0, 0.0);
  SimilarityGraph strict = SimilarityGraph::Extract(model, 0, 0.9);
  EXPECT_GE(all.edges().size(), strict.edges().size());
  for (const SimilarityEdge& e : strict.edges()) {
    EXPECT_GE(e.similarity, 0.9);
  }
}

TEST(SimilarityGraphTest, NodesAreAllMinedValues) {
  ValueSimilarityModel model = MineModel();
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.5);
  EXPECT_EQ(g.nodes().size(), 3u);
}

TEST(SimilarityGraphTest, EdgesSortedByDescendingSimilarity) {
  ValueSimilarityModel model = MineModel();
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.0);
  for (size_t i = 1; i < g.edges().size(); ++i) {
    EXPECT_GE(g.edges()[i - 1].similarity, g.edges()[i].similarity);
  }
}

TEST(SimilarityGraphTest, ToyotaHondaEdgeSurvives) {
  ValueSimilarityModel model = MineModel();
  // Toyota and Honda share the segment mix exactly; Harley is disconnected
  // at a moderate threshold.
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.5);
  bool found = false;
  for (const SimilarityEdge& e : g.edges()) {
    EXPECT_NE(e.a.ToString(), "Harley");
    EXPECT_NE(e.b.ToString(), "Harley");
    if ((e.a == Value::Cat("Honda") && e.b == Value::Cat("Toyota")) ||
        (e.a == Value::Cat("Toyota") && e.b == Value::Cat("Honda"))) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimilarityGraphTest, EdgesOfFiltersIncidentEdges) {
  ValueSimilarityModel model = MineModel();
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.0);
  auto edges = g.EdgesOf(Value::Cat("Toyota"));
  for (const SimilarityEdge& e : edges) {
    EXPECT_TRUE(e.a == Value::Cat("Toyota") || e.b == Value::Cat("Toyota"));
  }
  EXPECT_TRUE(g.EdgesOf(Value::Cat("Nope")).empty());
}

TEST(SimilarityGraphTest, DotOutputWellFormed) {
  ValueSimilarityModel model = MineModel();
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.0);
  std::string dot = g.ToDot("makes");
  EXPECT_EQ(dot.find("graph \"makes\" {"), 0u);
  EXPECT_NE(dot.find("\"Toyota\""), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(SimilarityGraphTest, EmptyModelYieldsEmptyGraph) {
  ValueSimilarityModel model;
  SimilarityGraph g = SimilarityGraph::Extract(model, 0, 0.5);
  EXPECT_TRUE(g.nodes().empty());
  EXPECT_TRUE(g.edges().empty());
}

}  // namespace
}  // namespace aimq
