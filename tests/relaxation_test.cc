#include "core/relaxation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace aimq {
namespace {

Schema CarSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Tuple FullTuple() {
  return Tuple({Value::Cat("Ford"), Value::Cat("Focus"), Value::Num(9000)});
}

TEST(RelaxTupleQueryTest, DropsRequestedAttributes) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {1});
  EXPECT_EQ(q.NumPredicates(), 2u);
  EXPECT_TRUE(q.Binds("Make"));
  EXPECT_FALSE(q.Binds("Model"));
  EXPECT_TRUE(q.Binds("Price"));
}

TEST(RelaxTupleQueryTest, EmptyRelaxSetIsFullyBound) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {});
  EXPECT_EQ(q.NumPredicates(), 3u);
}

TEST(RelaxTupleQueryTest, NullAttributesNeverBound) {
  Schema s = CarSchema();
  Tuple t({Value::Cat("Ford"), Value(), Value::Num(9000)});
  SelectionQuery q = RelaxTupleQuery(s, t, {});
  EXPECT_EQ(q.NumPredicates(), 2u);
  EXPECT_FALSE(q.Binds("Model"));
}

TEST(RelaxTupleQueryTest, AllAttributesRelaxedGivesEmptyQuery) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {0, 1, 2});
  EXPECT_TRUE(q.Empty());
}

TEST(TupleRelaxerTest, FollowsSingleOrderThenPairs) {
  Schema s = CarSchema();
  TupleRelaxer relaxer(s, FullTuple(), {2, 0, 1}, 2);
  std::vector<size_t> relaxed;

  ASSERT_TRUE(relaxer.HasNext());
  SelectionQuery q1 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{2}));
  EXPECT_FALSE(q1.Binds("Price"));
  EXPECT_EQ(q1.NumPredicates(), 2u);

  SelectionQuery q2 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{0}));

  SelectionQuery q3 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{1}));

  SelectionQuery q4 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{2, 0}));
  EXPECT_EQ(q4.NumPredicates(), 1u);
  EXPECT_TRUE(q4.Binds("Model"));

  relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{2, 1}));
  relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{0, 1}));
  EXPECT_FALSE(relaxer.HasNext());
}

TEST(TupleRelaxerTest, MaxRelaxZeroMeansAllButOne) {
  Schema s = CarSchema();
  TupleRelaxer relaxer(s, FullTuple(), {0, 1, 2}, 0);
  size_t count = 0;
  size_t max_relaxed = 0;
  std::vector<size_t> relaxed;
  while (relaxer.HasNext()) {
    relaxer.Next(&relaxed);
    max_relaxed = std::max(max_relaxed, relaxed.size());
    ++count;
  }
  // C(3,1) + C(3,2) = 6; never all three at once.
  EXPECT_EQ(count, 6u);
  EXPECT_EQ(max_relaxed, 2u);
}

TEST(RelaxTupleQueryTest, NumericBandProducesRangePredicates) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {}, 0.10);
  // Make/Model stay equality; Price 9000 becomes [8100, 9900].
  EXPECT_EQ(q.NumPredicates(), 4u);
  bool saw_ge = false, saw_le = false;
  for (const Predicate& p : q.predicates()) {
    if (p.attribute != "Price") {
      EXPECT_EQ(p.op, CompareOp::kEq);
      continue;
    }
    if (p.op == CompareOp::kGe) {
      saw_ge = true;
      EXPECT_DOUBLE_EQ(p.value.AsNum(), 8100.0);
    }
    if (p.op == CompareOp::kLe) {
      saw_le = true;
      EXPECT_DOUBLE_EQ(p.value.AsNum(), 9900.0);
    }
  }
  EXPECT_TRUE(saw_ge);
  EXPECT_TRUE(saw_le);
}

TEST(RelaxTupleQueryTest, BandedQueryMatchesNearbyNumerics) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {}, 0.10);
  Tuple near({Value::Cat("Ford"), Value::Cat("Focus"), Value::Num(9500)});
  Tuple far({Value::Cat("Ford"), Value::Cat("Focus"), Value::Num(12000)});
  EXPECT_TRUE(*q.Matches(s, near));
  EXPECT_FALSE(*q.Matches(s, far));
}

TEST(RelaxTupleQueryTest, RelaxedNumericAttributeDropsBandToo) {
  Schema s = CarSchema();
  SelectionQuery q = RelaxTupleQuery(s, FullTuple(), {2}, 0.10);
  EXPECT_EQ(q.NumPredicates(), 2u);
  EXPECT_FALSE(q.Binds("Price"));
}

TEST(TupleRelaxerTest, ProgressiveModeYieldsCumulativePrefixes) {
  Schema s = CarSchema();
  TupleRelaxer relaxer(s, FullTuple(), {2, 0, 1}, 0, 0.0,
                       RelaxationMode::kProgressive);
  std::vector<size_t> relaxed;

  ASSERT_TRUE(relaxer.HasNext());
  SelectionQuery q1 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{2}));
  EXPECT_EQ(q1.NumPredicates(), 2u);

  SelectionQuery q2 = relaxer.Next(&relaxed);
  EXPECT_EQ(relaxed, (std::vector<size_t>{2, 0}));
  EXPECT_EQ(q2.NumPredicates(), 1u);
  EXPECT_TRUE(q2.Binds("Model"));

  // Never relaxes everything: the last bound attribute stays.
  EXPECT_FALSE(relaxer.HasNext());
}

TEST(TupleRelaxerTest, ProgressiveRespectsMaxRelaxAttrs) {
  Schema s = CarSchema();
  TupleRelaxer relaxer(s, FullTuple(), {0, 1, 2}, 1, 0.0,
                       RelaxationMode::kProgressive);
  size_t steps = 0;
  while (relaxer.HasNext()) {
    relaxer.Next();
    ++steps;
  }
  EXPECT_EQ(steps, 1u);
}

TEST(TupleRelaxerTest, ProgressiveAnswerSetsAreMonotone) {
  // Each progressive step strictly weakens the query, so any tuple matching
  // step k also matches step k+1.
  Schema s = CarSchema();
  Relation r(s);
  Rng rng(3);
  const char* makes[] = {"Ford", "Kia"};
  const char* models[] = {"Focus", "Rio", "F-150"};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(r.Append(Tuple({Value::Cat(makes[rng.Uniform(2)]),
                                Value::Cat(models[rng.Uniform(3)]),
                                Value::Num(1000 * (1 + rng.Uniform(9)))}))
                    .ok());
  }
  TupleRelaxer relaxer(s, r.tuple(0), {0, 2, 1}, 0, 0.1,
                       RelaxationMode::kProgressive);
  std::vector<size_t> prev;
  while (relaxer.HasNext()) {
    auto rows = relaxer.Next().Evaluate(r);
    ASSERT_TRUE(rows.ok());
    for (size_t row : prev) {
      EXPECT_NE(std::find(rows->begin(), rows->end(), row), rows->end());
    }
    prev = *rows;
  }
}

TEST(StrategyOrderTest, GuidedKeepsMinedOrder) {
  Rng rng(1);
  std::vector<size_t> mined{3, 1, 2, 0};
  EXPECT_EQ(StrategyOrder(RelaxationStrategy::kGuided, mined, &rng), mined);
}

TEST(StrategyOrderTest, RandomIsPermutationOfMined) {
  Rng rng(1);
  std::vector<size_t> mined{0, 1, 2, 3, 4, 5, 6, 7};
  auto shuffled = StrategyOrder(RelaxationStrategy::kRandom, mined, &rng);
  EXPECT_EQ(std::set<size_t>(shuffled.begin(), shuffled.end()),
            std::set<size_t>(mined.begin(), mined.end()));
  // With 8 elements a shuffle is near-certainly not the identity.
  EXPECT_NE(shuffled, mined);
}

TEST(StrategyOrderTest, RandomIsDeterministicPerRngState) {
  Rng rng1(7), rng2(7);
  std::vector<size_t> mined{0, 1, 2, 3, 4};
  EXPECT_EQ(StrategyOrder(RelaxationStrategy::kRandom, mined, &rng1),
            StrategyOrder(RelaxationStrategy::kRandom, mined, &rng2));
}

TEST(StrategyNameTest, Names) {
  EXPECT_STREQ(RelaxationStrategyName(RelaxationStrategy::kGuided),
               "GuidedRelax");
  EXPECT_STREQ(RelaxationStrategyName(RelaxationStrategy::kRandom),
               "RandomRelax");
}

}  // namespace
}  // namespace aimq
