#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

TEST(PaperMrrTest, PerfectAgreementIsOne) {
  // User ranks exactly match system ranks 1..5.
  EXPECT_DOUBLE_EQ(PaperMrr({1, 2, 3, 4, 5}), 1.0);
}

TEST(PaperMrrTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(PaperMrr({}), 0.0);
}

TEST(PaperMrrTest, OffByOneEverywhere) {
  // |user − system| = 1 for each → every term 1/2.
  EXPECT_DOUBLE_EQ(PaperMrr({2, 1, 4, 3}), 0.5);
}

TEST(PaperMrrTest, IrrelevantAnswersUseRankZero) {
  // Single answer judged irrelevant: |0 − 1| + 1 = 2 → 0.5.
  EXPECT_DOUBLE_EQ(PaperMrr({0}), 0.5);
  // Deep irrelevant answers hurt more: |0 − 10| + 1 = 11.
  std::vector<int> ranks(10, 0);
  double mrr = PaperMrr(ranks);
  EXPECT_LT(mrr, 0.31);
  EXPECT_GT(mrr, 0.0);
}

TEST(PaperMrrTest, SwappedPairScoresBelowPerfect) {
  double swapped = PaperMrr({2, 1, 3});
  EXPECT_LT(swapped, 1.0);
  EXPECT_GT(swapped, 0.5);
}

TEST(PaperMrrTest, MonotoneInDisplacement) {
  EXPECT_GT(PaperMrr({1}), PaperMrr({2}));
  EXPECT_GT(PaperMrr({2}), PaperMrr({5}));
}

TEST(ClassicRrTest, FirstRelevantPosition) {
  EXPECT_DOUBLE_EQ(ClassicReciprocalRank({1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(ClassicReciprocalRank({0, 3, 0}), 0.5);
  EXPECT_DOUBLE_EQ(ClassicReciprocalRank({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(ClassicReciprocalRank({}), 0.0);
}

TEST(TopKAccuracyTest, CountsAgreementInPrefix) {
  std::vector<int> labels{1, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(TopKClassAccuracy(labels, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKClassAccuracy(labels, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(TopKClassAccuracy(labels, 1, 4), 0.75);
  EXPECT_DOUBLE_EQ(TopKClassAccuracy(labels, 1, 5), 0.6);
  EXPECT_DOUBLE_EQ(TopKClassAccuracy(labels, 0, 5), 0.4);
}

TEST(TopKAccuracyTest, KLargerThanListUsesAll) {
  EXPECT_DOUBLE_EQ(TopKClassAccuracy({1, 0}, 1, 10), 0.5);
}

TEST(TopKAccuracyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(TopKClassAccuracy({}, 1, 5), 0.0);
  EXPECT_DOUBLE_EQ(TopKClassAccuracy({1}, 1, 0), 0.0);
}

TEST(PermutationTest, ClearDifferenceIsSignificant) {
  std::vector<double> a(20, 0.9), b(20, 0.1);
  EXPECT_LT(PairedPermutationPValue(a, b, 2000, 1), 0.01);
}

TEST(PermutationTest, IdenticalSamplesNotSignificant) {
  std::vector<double> a{0.2, 0.5, 0.9, 0.4, 0.7};
  EXPECT_DOUBLE_EQ(PairedPermutationPValue(a, a, 2000, 1), 1.0);
}

TEST(PermutationTest, NoisyTieNotSignificant) {
  // Differences alternate in sign and cancel: no evidence.
  std::vector<double> a{0.5, 0.3, 0.5, 0.3, 0.5, 0.3};
  std::vector<double> b{0.3, 0.5, 0.3, 0.5, 0.3, 0.5};
  EXPECT_GT(PairedPermutationPValue(a, b, 2000, 1), 0.2);
}

TEST(PermutationTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PairedPermutationPValue({}, {}, 100, 1), 1.0);
  EXPECT_DOUBLE_EQ(PairedPermutationPValue({1.0}, {1.0, 2.0}, 100, 1), 1.0);
}

TEST(PermutationTest, DeterministicPerSeed) {
  std::vector<double> a{0.6, 0.7, 0.5, 0.8, 0.4, 0.9};
  std::vector<double> b{0.5, 0.5, 0.6, 0.6, 0.5, 0.6};
  EXPECT_DOUBLE_EQ(PairedPermutationPValue(a, b, 1000, 9),
                   PairedPermutationPValue(a, b, 1000, 9));
}

TEST(KendallTauTest, IdenticalAndReversedOrders) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
}

TEST(KendallTauTest, PartialAgreement) {
  // One adjacent swap in 4 items: 5 concordant, 1 discordant of 6 pairs.
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {2, 1, 3, 4}), 4.0 / 6.0, 1e-12);
}

TEST(KendallTauTest, IrrelevantRankIsWorst) {
  // Rank 0 sits below every positive rank in both orderings.
  EXPECT_DOUBLE_EQ(KendallTau({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 0}, {0, 1}), -1.0);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1}, {1}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2}, {1, 2, 3}), 0.0);
  // All ties: no information.
  EXPECT_DOUBLE_EQ(KendallTau({0, 0, 0}, {1, 2, 3}), 0.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(PrecisionRecallTest, PrecisionAtK) {
  std::vector<bool> rel{true, false, true, true, false};
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 4), 0.75);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 10), 0.6);  // clamped to list size
  EXPECT_DOUBLE_EQ(PrecisionAtK({}, 3), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(rel, 0), 0.0);
}

TEST(PrecisionRecallTest, RecallAtK) {
  std::vector<bool> rel{true, false, true, true, false};
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 1, 6), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 5, 6), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 5, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(rel, 3, 0), 0.0);
}

TEST(BootstrapCiTest, IntervalBracketsMean) {
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(0.4 + 0.01 * (i % 10));
  MeanCI ci = BootstrapMeanCI(values);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_NEAR(ci.mean, Mean(values), 1e-12);
  EXPECT_GT(ci.hi - ci.lo, 0.0);
  EXPECT_LT(ci.hi - ci.lo, 0.05);
}

TEST(BootstrapCiTest, DegenerateInputsCollapse) {
  MeanCI empty = BootstrapMeanCI({});
  EXPECT_DOUBLE_EQ(empty.lo, empty.hi);
  MeanCI single = BootstrapMeanCI({3.0});
  EXPECT_DOUBLE_EQ(single.mean, 3.0);
  EXPECT_DOUBLE_EQ(single.lo, 3.0);
  EXPECT_DOUBLE_EQ(single.hi, 3.0);
  // Constant samples: zero-width interval.
  MeanCI constant = BootstrapMeanCI({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(constant.lo, 2.0);
  EXPECT_DOUBLE_EQ(constant.hi, 2.0);
}

TEST(BootstrapCiTest, DeterministicPerSeed) {
  std::vector<double> values{0.1, 0.9, 0.4, 0.6, 0.2, 0.8};
  MeanCI a = BootstrapMeanCI(values, 500, 0.05, 7);
  MeanCI b = BootstrapMeanCI(values, 500, 0.05, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCiTest, WiderAlphaNarrowsInterval) {
  std::vector<double> values{0.1, 0.9, 0.4, 0.6, 0.2, 0.8, 0.3, 0.7};
  MeanCI ci95 = BootstrapMeanCI(values, 2000, 0.05);
  MeanCI ci50 = BootstrapMeanCI(values, 2000, 0.50);
  EXPECT_LE(ci50.hi - ci50.lo, ci95.hi - ci95.lo);
}

}  // namespace
}  // namespace aimq
