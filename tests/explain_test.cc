#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/cardb.h"

namespace aimq {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 4000;
    spec.seed = 13;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 2000;
    auto knowledge = BuildKnowledge(*db_, options);
    ASSERT_TRUE(knowledge.ok());
    engine_ = new AimqEngine(db_, knowledge.TakeValue(), options);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
    engine_ = nullptr;
    db_ = nullptr;
  }

  static WebDatabase* db_;
  static AimqEngine* engine_;
};

WebDatabase* ExplainTest::db_ = nullptr;
AimqEngine* ExplainTest::engine_ = nullptr;

TEST_F(ExplainTest, ContributionsSumToReportedSimilarity) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(9000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  for (const RankedAnswer& a : *answers) {
    auto explanation = engine_->Explain(q, a.tuple);
    ASSERT_TRUE(explanation.ok());
    EXPECT_NEAR(explanation->total, a.similarity, 1e-9);
  }
}

TEST_F(ExplainTest, OneContributionPerBoundAttribute) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(9000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  auto explanation = engine_->Explain(q, (*answers)[0].tuple);
  ASSERT_TRUE(explanation.ok());
  ASSERT_EQ(explanation->contributions.size(), 2u);
  double weight_sum = 0.0;
  for (const AttributeContribution& c : explanation->contributions) {
    EXPECT_GE(c.similarity, 0.0);
    EXPECT_LE(c.similarity, 1.0);
    EXPECT_NEAR(c.contribution, c.weight * c.similarity, 1e-12);
    weight_sum += c.weight;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST_F(ExplainTest, ExactMatchFlagged) {
  ImpreciseQuery q;
  q.Bind("Make", Value::Cat("Toyota"));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  // The top answer of a Make-only query is a Toyota.
  auto explanation = engine_->Explain(q, (*answers)[0].tuple);
  ASSERT_TRUE(explanation.ok());
  ASSERT_EQ(explanation->contributions.size(), 1u);
  EXPECT_TRUE(explanation->contributions[0].exact_match);
  EXPECT_DOUBLE_EQ(explanation->contributions[0].similarity, 1.0);
}

TEST_F(ExplainTest, SortedByWeightDescending) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Color", Value::Cat("Red"));
  q.Bind("Price", Value::Num(9000));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  auto explanation = engine_->Explain(q, (*answers)[0].tuple);
  ASSERT_TRUE(explanation.ok());
  for (size_t i = 1; i < explanation->contributions.size(); ++i) {
    EXPECT_GE(explanation->contributions[i - 1].weight,
              explanation->contributions[i].weight);
  }
}

TEST_F(ExplainTest, ToStringMentionsAttributesAndValues) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  auto answers = engine_->Answer(q);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  auto explanation = engine_->Explain(q, (*answers)[0].tuple);
  ASSERT_TRUE(explanation.ok());
  std::string s = explanation->ToString();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("Camry"), std::string::npos);
  EXPECT_NE(s.find("Sim(Q, t)"), std::string::npos);
}

TEST_F(ExplainTest, RejectsArityMismatch) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  EXPECT_FALSE(engine_->Explain(q, Tuple({Value::Cat("x")})).ok());
}

TEST_F(ExplainTest, UnknownAttributeErrors) {
  ImpreciseQuery q;
  q.Bind("Bogus", Value::Cat("x"));
  Tuple t = db_->hidden_relation_for_testing().tuple(0);
  EXPECT_FALSE(engine_->Explain(q, t).ok());
}

}  // namespace
}  // namespace aimq
