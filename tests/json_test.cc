#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace aimq {
namespace {

TEST(JsonTest, BuildsAndDumpsScalars) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Num(42).Dump(), "42");
  EXPECT_EQ(Json::Num(-7).Dump(), "-7");
  EXPECT_EQ(Json::Num(2.5).Dump(), "2.5");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json obj = Json::Obj();
  obj.Set("z", Json::Num(1));
  obj.Set("a", Json::Num(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  Json s = Json::Str("a\"b\\c\nd\te\x01");
  EXPECT_EQ(s.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  auto parsed = Json::Parse(s.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsStr(), "a\"b\\c\nd\te\x01");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto r = Json::Parse(
      "{\"id\": 3, \"ok\": true, \"answers\": [{\"sim\": 0.5}, null], "
      "\"note\": \"x\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r->GetNum("id"), 3.0);
  EXPECT_EQ(*r->GetBool("ok"), true);
  EXPECT_EQ(*r->GetStr("note"), "x");
  const Json* answers = r->Find("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_TRUE(answers->is_array());
  ASSERT_EQ(answers->AsArr().size(), 2u);
  EXPECT_EQ(*answers->AsArr()[0].GetNum("sim"), 0.5);
  EXPECT_TRUE(answers->AsArr()[1].is_null());
}

TEST(JsonTest, RoundTripsThroughDumpAndParse) {
  Json obj = Json::Obj();
  obj.Set("text", Json::Str("Econoline Van, 'quoted'"));
  obj.Set("n", Json::Num(123456789.25));
  obj.Set("flags", Json::Arr({Json::Bool(true), Json::Null()}));
  auto reparsed = Json::Parse(obj.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), obj.Dump());
}

TEST(JsonTest, TypedAccessorsReportErrors) {
  auto r = Json::Parse("{\"a\": \"text\"}");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetNum("a").ok());
  EXPECT_FALSE(r->GetNum("missing").ok());
  EXPECT_FALSE(r->GetBool("a").ok());
  EXPECT_TRUE(r->GetStr("a").ok());
  EXPECT_EQ(r->Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "{\"a\" 1}", "\"unterminated",
        "1 2", "{\"a\":1}x", "nul", "[1 2]", "\"bad\\q\""}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << bad;
  }
}

TEST(JsonTest, RejectsAbsurdNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  auto r = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsStr(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  // A NaN rate (0/0 before any traffic) must never leak an invalid `nan`
  // token into a wire response or metrics scrape.
  EXPECT_EQ(Json::Num(std::nan("")).Dump(), "null");
  EXPECT_EQ(Json::Num(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(Json::Num(-std::numeric_limits<double>::infinity()).Dump(),
            "null");
  Json obj = Json::Obj();
  obj.Set("rate", Json::Num(std::nan("")));
  const std::string dump = obj.Dump();
  EXPECT_EQ(dump, R"js({"rate":null})js");
  EXPECT_TRUE(Json::Parse(dump).ok());
}

TEST(JsonTest, LargeCountersSurviveRoundTrip) {
  // Metrics counters are uint64 but ride as doubles; integers below 2^53
  // must round-trip exactly.
  const double big = 9007199254740992.0 - 1;  // 2^53 - 1
  auto r = Json::Parse(Json::Num(big).Dump());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsNum(), big);
}

}  // namespace
}  // namespace aimq
