#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace aimq {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{7}}) {
    std::vector<std::atomic<int>> visits(257);
    ParallelFor(visits.size(), threads,
                [&](size_t i) { visits[i].fetch_add(1); });
    for (size_t i = 0; i < visits.size(); ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, EmptyAndSingleton) {
  int calls = 0;
  ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, DeterministicPerSlotResults) {
  // Workers write only their own slot: the result must be identical no
  // matter how many threads run.
  auto compute = [](size_t threads) {
    std::vector<double> out(100);
    ParallelFor(out.size(), threads, [&](size_t i) {
      out[i] = static_cast<double>(i * i % 97);
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
  EXPECT_EQ(compute(1), compute(0));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ResolveThreadsTest, Basics) {
  EXPECT_EQ(ResolveThreads(5), 5u);
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_LE(ResolveThreads(0), 8u);
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  std::vector<long> values(10000);
  std::iota(values.begin(), values.end(), 1);
  std::atomic<long> parallel_sum{0};
  ParallelFor(values.size(), 4,
              [&](size_t i) { parallel_sum.fetch_add(values[i]); });
  long serial_sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(parallel_sum.load(), serial_sum);
}

}  // namespace
}  // namespace aimq
