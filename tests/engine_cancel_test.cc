// Cooperative cancellation and deadlines in the query engine, plus the
// phase-timer flush regression: RelaxationStats phase timers must be
// finalized on *every* exit path (cancelled, deadlined, error), not only on
// the happy path.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/control.h"
#include "core/engine.h"
#include "datagen/cardb.h"
#include "util/stopwatch.h"

namespace aimq {
namespace {

// A source whose every probe costs real wall-clock time, like an autonomous
// Web database does. Makes deadline windows deterministic to hit.
class SlowDb : public WebDatabase {
 public:
  SlowDb(std::string name, Relation data, std::chrono::milliseconds delay)
      : WebDatabase(std::move(name), std::move(data)), delay_(delay) {}

  Result<std::vector<uint32_t>> ExecuteRows(
      const SelectionQuery& query) const override {
    std::this_thread::sleep_for(delay_);
    return WebDatabase::ExecuteRows(query);
  }

 private:
  std::chrono::milliseconds delay_;
};

class EngineCancelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 600;
    spec.seed = 11;
    Relation data = CarDbGenerator(spec).Generate();
    fast_db_ = new WebDatabase("CarDB", data);
    slow_db_ = new SlowDb("CarDB", std::move(data),
                          std::chrono::milliseconds(5));
    options_ = new AimqOptions();
    options_->collector.sample_size = 300;
    options_->tsim = 0.4;
    options_->top_k = 10;
    // Mine against the fast copy; the knowledge transfers (same relation).
    auto knowledge = BuildKnowledge(*fast_db_, *options_);
    ASSERT_TRUE(knowledge.ok()) << knowledge.status().ToString();
    knowledge_ = new MinedKnowledge(knowledge.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete options_;
    delete slow_db_;
    delete fast_db_;
    knowledge_ = nullptr;
    options_ = nullptr;
    slow_db_ = nullptr;
    fast_db_ = nullptr;
  }

  // An engine over the slow source whose full (uncancelled) run takes many
  // hundreds of milliseconds: plenty of room for a deadline to land inside
  // the relaxation fan-out.
  static std::unique_ptr<AimqEngine> MakeSlowEngine() {
    AimqOptions options = *options_;
    options.num_threads = 1;
    options.probe_cache_capacity = 0;  // every probe pays the delay
    options.relax_stop_after = 0;      // walk the full relaxation sequence
    options.base_set_limit = 8;
    return std::make_unique<AimqEngine>(slow_db_, *knowledge_, options);
  }

  static ImpreciseQuery CamryQuery() {
    ImpreciseQuery q;
    q.Bind("Model", Value::Cat("Camry"));
    return q;
  }

  static WebDatabase* fast_db_;
  static SlowDb* slow_db_;
  static AimqOptions* options_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* EngineCancelTest::fast_db_ = nullptr;
SlowDb* EngineCancelTest::slow_db_ = nullptr;
AimqOptions* EngineCancelTest::options_ = nullptr;
MinedKnowledge* EngineCancelTest::knowledge_ = nullptr;

TEST_F(EngineCancelTest, PreCancelledAnswerAbortsWithTypedStatus) {
  auto engine = MakeSlowEngine();
  QueryControl control;
  control.RequestCancel();
  RelaxationStats stats;
  bool truncated = true;
  auto r = engine->Answer(CamryQuery(), RelaxationStrategy::kGuided, &stats,
                          &control, &truncated);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(truncated);  // nothing partial was produced
  // Regression: the base-set phase timer must be flushed even though the
  // phase aborted. Before the fix it stayed exactly 0.0.
  EXPECT_GT(stats.base_set_seconds, 0.0);
  EXPECT_EQ(stats.queries_issued.load(), 0u);
}

TEST_F(EngineCancelTest, DeadlineDuringBaseSetDerivationFlushesTimer) {
  auto engine = MakeSlowEngine();
  // Base query Model=Camry AND Price=10001 is empty, so derivation enters
  // the footnote-2 generalization loop — where the expired deadline is
  // noticed after the first 5ms probe.
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10001));
  QueryControl control;
  control.SetDeadlineAfterMillis(2);
  RelaxationStats stats;
  auto r = engine->Answer(q, RelaxationStrategy::kGuided, &stats, &control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // Regression: the aborted phase still accounts its elapsed time.
  EXPECT_GT(stats.base_set_seconds, 0.0);
}

TEST_F(EngineCancelTest, DeadlineMidRelaxationReturnsTruncatedPartialTopK) {
  auto engine = MakeSlowEngine();
  QueryControl control;
  control.SetDeadlineAfterMillis(60);
  RelaxationStats stats;
  bool truncated = false;
  auto r = engine->Answer(CamryQuery(), RelaxationStrategy::kGuided, &stats,
                          &control, &truncated);
  // The base query is non-empty (fast), so the deadline lands inside the
  // relaxation fan-out: a *partial* top-k comes back flagged truncated.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(truncated);
  // Base-set tuples match Q exactly, so the partial answer is non-empty.
  EXPECT_GT(r->size(), 0u);
  // Regression: relaxation and ranking phase timers flushed despite the stop.
  EXPECT_GT(stats.relax_seconds, 0.0);
  EXPECT_GE(stats.rank_seconds, 0.0);
}

TEST_F(EngineCancelTest, CancelFromAnotherThreadStopsInFlightQuery) {
  auto engine = MakeSlowEngine();
  QueryControl control;
  Stopwatch watch;
  std::thread canceller([&control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    control.RequestCancel();
  });
  bool truncated = false;
  auto r = engine->Answer(CamryQuery(), RelaxationStrategy::kGuided, nullptr,
                          &control, &truncated);
  canceller.join();
  // The full slow run takes multiple seconds; cancellation must cut it to
  // roughly the cancel point plus one in-flight probe.
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
  if (r.ok()) {
    EXPECT_TRUE(truncated);
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(EngineCancelTest, TruncatedAnswersAreNeverCached) {
  auto engine = MakeSlowEngine();
  engine->SetAnswerCacheCapacity(16);
  QueryControl control;
  control.SetDeadlineAfterMillis(60);
  bool truncated = false;
  auto partial = engine->Answer(CamryQuery(), RelaxationStrategy::kGuided,
                                nullptr, &control, &truncated);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  ASSERT_TRUE(truncated);
  // The partial answer must not have been cached for future callers.
  EXPECT_EQ(engine->answer_cache_size(), 0u);
  EXPECT_EQ(engine->answer_cache_hits(), 0u);
}

TEST_F(EngineCancelTest, ControlWithGenerousDeadlineChangesNothing) {
  // A control that never fires must leave answers bit-identical.
  AimqOptions options = *options_;
  options.num_threads = 4;
  AimqEngine baseline(fast_db_, *knowledge_, options);
  AimqEngine controlled(fast_db_, *knowledge_, options);
  QueryControl control;
  control.SetDeadlineAfterMillis(600000);
  bool truncated = true;
  auto a = baseline.Answer(CamryQuery());
  auto b = controlled.Answer(CamryQuery(), RelaxationStrategy::kGuided,
                             nullptr, &control, &truncated);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].tuple, (*b)[i].tuple);
    EXPECT_EQ((*a)[i].similarity, (*b)[i].similarity);
  }
}

TEST_F(EngineCancelTest, FindSimilarStopsAtCancel) {
  auto engine = MakeSlowEngine();
  const Relation& hidden = slow_db_->hidden_relation_for_testing();
  QueryControl control;
  control.RequestCancel();
  auto r = engine->FindSimilar(hidden.tuple(3), 10, 0.5,
                               RelaxationStrategy::kGuided, nullptr, &control);
  // Progressive protocol: a stopped descent returns what it has (nothing).
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->empty());
}

TEST_F(EngineCancelTest, DeriveBaseSetHonoursControl) {
  auto engine = MakeSlowEngine();
  QueryControl control;
  control.RequestCancel();
  RelaxationStats stats;
  auto r = engine->DeriveBaseSet(CamryQuery(), &stats, &control);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(stats.queries_issued.load(), 0u);
}

}  // namespace
}  // namespace aimq
