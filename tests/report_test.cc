#include "core/report.h"

#include <gtest/gtest.h>

#include "datagen/cardb.h"
#include "webdb/web_database.h"

namespace aimq {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CarDbSpec spec;
    spec.num_tuples = 3000;
    spec.seed = 33;
    db_ = new WebDatabase("CarDB", CarDbGenerator(spec).Generate());
    AimqOptions options;
    options.collector.sample_size = 1500;
    auto k = BuildKnowledge(*db_, options);
    ASSERT_TRUE(k.ok());
    knowledge_ = new MinedKnowledge(k.TakeValue());
  }
  static void TearDownTestSuite() {
    delete knowledge_;
    delete db_;
    knowledge_ = nullptr;
    db_ = nullptr;
  }

  static WebDatabase* db_;
  static MinedKnowledge* knowledge_;
};

WebDatabase* ReportTest::db_ = nullptr;
MinedKnowledge* ReportTest::knowledge_ = nullptr;

TEST_F(ReportTest, ContainsAllSections) {
  std::string md = RenderMiningReport(*knowledge_, db_->schema());
  for (const char* section :
       {"# AIMQ mining report", "## Sample", "## Dependencies",
        "## Attribute ordering", "## Learned value similarity"}) {
    EXPECT_NE(md.find(section), std::string::npos) << section;
  }
}

TEST_F(ReportTest, MentionsEveryAttributeInOrderingTable) {
  std::string md = RenderMiningReport(*knowledge_, db_->schema());
  for (const Attribute& a : db_->schema().attributes()) {
    EXPECT_NE(md.find("| " + a.name + " |"), std::string::npos) << a.name;
  }
}

TEST_F(ReportTest, ReportsSampleSizeAndCounts) {
  std::string md = RenderMiningReport(*knowledge_, db_->schema());
  EXPECT_NE(md.find("Tuples: 1500"), std::string::npos);
  EXPECT_NE(md.find("AFDs mined: " + std::to_string(
                        knowledge_->dependencies.afds.size())),
            std::string::npos);
}

TEST_F(ReportTest, ContainsModelToMakeAfd) {
  std::string md = RenderMiningReport(*knowledge_, db_->schema());
  EXPECT_NE(md.find("{Model} -> Make"), std::string::npos);
}

TEST_F(ReportTest, OptionsLimitListLengths) {
  ReportOptions opts;
  opts.max_afds = 1;
  opts.values_per_attribute = 1;
  opts.neighbors_per_value = 1;
  std::string small = RenderMiningReport(*knowledge_, db_->schema(), opts);
  std::string large = RenderMiningReport(*knowledge_, db_->schema());
  EXPECT_LT(small.size(), large.size());
}

TEST_F(ReportTest, ProfilesPopularValuesWithNeighbors) {
  std::string md = RenderMiningReport(*knowledge_, db_->schema());
  // The most popular make/model should be profiled with bold markers.
  EXPECT_NE(md.find("**Toyota**"), std::string::npos);
  EXPECT_NE(md.find("### Make"), std::string::npos);
  EXPECT_NE(md.find("### Model"), std::string::npos);
}

}  // namespace
}  // namespace aimq
