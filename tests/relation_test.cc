#include "relation/relation.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <unistd.h>
#include <vector>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Make", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

Tuple Row(const std::string& make, double price) {
  return Tuple({Value::Cat(make), Value::Num(price)});
}

TEST(RelationTest, AppendValidatesArity) {
  Relation r(TestSchema());
  EXPECT_TRUE(r.Append(Row("Ford", 1)).ok());
  EXPECT_FALSE(r.Append(Tuple({Value::Cat("Ford")})).ok());
  EXPECT_EQ(r.NumTuples(), 1u);
}

TEST(RelationTest, AppendValidatesTypes) {
  Relation r(TestSchema());
  EXPECT_FALSE(r.Append(Tuple({Value::Num(1), Value::Num(2)})).ok());
  EXPECT_FALSE(r.Append(Tuple({Value::Cat("a"), Value::Cat("b")})).ok());
}

TEST(RelationTest, NullsAllowedAnywhere) {
  Relation r(TestSchema());
  EXPECT_TRUE(r.Append(Tuple({Value(), Value()})).ok());
}

TEST(RelationTest, TupleAccess) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.Append(Row("Kia", 9000)).ok());
  EXPECT_EQ(r.tuple(0).At(0).AsCat(), "Kia");
  EXPECT_FALSE(r.Empty());
}

TEST(RelationTest, DistinctValuesFirstSeenOrder) {
  Relation r(TestSchema());
  for (const char* m : {"Ford", "Kia", "Ford", "BMW", "Kia"}) {
    ASSERT_TRUE(r.Append(Row(m, 1)).ok());
  }
  auto distinct = r.DistinctValues(0);
  ASSERT_EQ(distinct.size(), 3u);
  EXPECT_EQ(distinct[0], Value::Cat("Ford"));
  EXPECT_EQ(distinct[1], Value::Cat("Kia"));
  EXPECT_EQ(distinct[2], Value::Cat("BMW"));
  EXPECT_EQ(r.DistinctCount(0), 3u);
}

TEST(RelationTest, DistinctValuesSkipNulls) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(1)})).ok());
  ASSERT_TRUE(r.Append(Row("Ford", 2)).ok());
  EXPECT_EQ(r.DistinctCount(0), 1u);
}

TEST(RelationTest, DistinctNumericValues) {
  Relation r(TestSchema());
  for (double p : {1.0, 2.0, 1.0, 3.0}) {
    ASSERT_TRUE(r.Append(Row("x", p)).ok());
  }
  EXPECT_EQ(r.DistinctCount(1), 3u);
}

TEST(RelationTest, SampleWithoutReplacementSizeAndMembership) {
  Relation r(TestSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Append(Row("m" + std::to_string(i), i)).ok());
  }
  Rng rng(5);
  Relation s = r.SampleWithoutReplacement(30, &rng);
  EXPECT_EQ(s.NumTuples(), 30u);
  EXPECT_EQ(s.schema(), r.schema());
  // All sampled tuples exist in the original, and are distinct.
  std::set<double> prices;
  for (const Tuple& t : s.tuples()) {
    double p = t.At(1).AsNum();
    EXPECT_TRUE(prices.insert(p).second);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 100.0);
  }
}

TEST(RelationTest, SampleLargerThanRelationReturnsAll) {
  Relation r(TestSchema());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r.Append(Row("x", i)).ok());
  Rng rng(5);
  EXPECT_EQ(r.SampleWithoutReplacement(50, &rng).NumTuples(), 5u);
}

TEST(RelationTest, SamplingIsDeterministicPerSeed) {
  Relation r(TestSchema());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(r.Append(Row("x", i)).ok());
  Rng rng1(9), rng2(9), rng3(10);
  Relation a = r.SampleWithoutReplacement(10, &rng1);
  Relation b = r.SampleWithoutReplacement(10, &rng2);
  Relation c = r.SampleWithoutReplacement(10, &rng3);
  EXPECT_EQ(a.tuples(), b.tuples());
  EXPECT_NE(a.tuples(), c.tuples());
}

TEST(RelationTest, Head) {
  Relation r(TestSchema());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.Append(Row("x", i)).ok());
  Relation h = r.Head(3);
  ASSERT_EQ(h.NumTuples(), 3u);
  EXPECT_DOUBLE_EQ(h.tuple(2).At(1).AsNum(), 2.0);
  EXPECT_EQ(r.Head(99).NumTuples(), 10u);
  EXPECT_EQ(r.Head(0).NumTuples(), 0u);
}

class RelationCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("aimq_relation_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(RelationCsvTest, WriteReadRoundTrip) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.Append(Row("Toyota", 10000)).ok());
  ASSERT_TRUE(r.Append(Tuple({Value(), Value::Num(1.5)})).ok());
  ASSERT_TRUE(r.WriteCsv(path_.string()).ok());

  auto back = Relation::ReadCsv(path_.string(), TestSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumTuples(), 2u);
  EXPECT_EQ(back->tuple(0), r.tuple(0));
  EXPECT_TRUE(back->tuple(1).At(0).is_null());
  EXPECT_DOUBLE_EQ(back->tuple(1).At(1).AsNum(), 1.5);
}

TEST_F(RelationCsvTest, HeaderMismatchErrors) {
  Relation r(TestSchema());
  ASSERT_TRUE(r.WriteCsv(path_.string()).ok());
  auto other = Schema::Make({{"A", AttrType::kCategorical},
                             {"B", AttrType::kNumeric}});
  auto back = Relation::ReadCsv(path_.string(), *other);
  EXPECT_FALSE(back.ok());
}

TEST(TupleTest, ToStringAndHash) {
  Tuple t({Value::Cat("Ford"), Value::Num(5)});
  EXPECT_EQ(t.ToString(), "<Ford, 5>");
  Tuple same({Value::Cat("Ford"), Value::Num(5)});
  Tuple diff({Value::Cat("Ford"), Value::Num(6)});
  EXPECT_EQ(t, same);
  EXPECT_EQ(t.Hash(), same.Hash());
  EXPECT_NE(t, diff);
}

TEST(TupleTest, HashUsableInUnorderedSet) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(Tuple({Value::Cat("a")}));
  set.insert(Tuple({Value::Cat("a")}));
  set.insert(Tuple({Value::Cat("b")}));
  EXPECT_EQ(set.size(), 2u);
}

// --- Columnar-cache concurrency (the §5e lock-order fix) ---

TEST(RelationConcurrencyTest, ConcurrentSnapshotCallsShareOneEncode) {
  Relation r(TestSchema());
  for (int i = 0; i < 2000; ++i) {
    r.AppendUnchecked(Row("Make" + std::to_string(i % 37), i));
  }
  constexpr size_t kThreads = 8;
  std::vector<std::shared_ptr<const ColumnarRelation>> snaps(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { snaps[t] = r.columnar(); });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(snaps[t], nullptr);
    EXPECT_EQ(snaps[t], snaps[0]);  // one cached build served everyone
    EXPECT_EQ(snaps[t]->NumRows(), 2000u);
  }
}

TEST(RelationConcurrencyTest, InterleavedMutateAndSnapshotRoundsStayCoherent) {
  // Rounds of (sequenced) mutation followed by concurrent snapshot readers:
  // every reader of a round must see that round's rows, and all readers of
  // one round must share one snapshot. Exercises the generation-guarded
  // publish in Relation::columnar() under real thread interleavings.
  Relation r(TestSchema());
  constexpr size_t kRounds = 100;
  constexpr size_t kThreads = 4;
  for (size_t round = 0; round < kRounds; ++round) {
    ASSERT_TRUE(r.Append(Row("M" + std::to_string(round % 7), round)).ok());
    std::vector<std::shared_ptr<const ColumnarRelation>> snaps(kThreads);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { snaps[t] = r.columnar(); });
    }
    for (std::thread& t : threads) t.join();
    for (size_t t = 0; t < kThreads; ++t) {
      ASSERT_EQ(snaps[t]->NumRows(), round + 1) << "round " << round;
      EXPECT_EQ(snaps[t], snaps[0]) << "round " << round;
    }
  }
}

TEST(RelationConcurrencyTest, OldSnapshotsSurviveMutationAndOwnerDeath) {
  auto orphan = [] {
    Relation r(TestSchema());
    EXPECT_TRUE(r.Append(Row("Ford", 1)).ok()) << "setup";
    auto before = r.columnar();
    EXPECT_TRUE(r.Append(Row("Kia", 2)).ok()) << "setup";
    auto after = r.columnar();
    EXPECT_EQ(before->NumRows(), 1u);
    EXPECT_EQ(after->NumRows(), 2u);
    EXPECT_NE(before, after);
    return before;  // the relation dies here
  }();
  EXPECT_EQ(orphan->NumRows(), 1u);
  EXPECT_EQ(orphan->ValueAt(0, 0), Value::Cat("Ford"));
}

}  // namespace
}  // namespace aimq
