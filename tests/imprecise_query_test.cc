#include "query/imprecise_query.h"

#include <gtest/gtest.h>

namespace aimq {
namespace {

Schema TestSchema() {
  return Schema::Make({{"Model", AttrType::kCategorical},
                       {"Price", AttrType::kNumeric}})
      .ValueOrDie();
}

TEST(ImpreciseQueryTest, BindAccumulates) {
  ImpreciseQuery q;
  EXPECT_TRUE(q.Empty());
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  EXPECT_EQ(q.NumBindings(), 2u);
  EXPECT_FALSE(q.Empty());
}

TEST(ImpreciseQueryTest, BindingIndex) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  EXPECT_EQ(*q.BindingIndex("Price"), 1u);
  EXPECT_FALSE(q.BindingIndex("Make").ok());
}

TEST(ImpreciseQueryTest, ValidateAcceptsWellTyped) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  EXPECT_TRUE(q.Validate(TestSchema()).ok());
}

TEST(ImpreciseQueryTest, ValidateRejectsUnknownAttribute) {
  ImpreciseQuery q;
  q.Bind("Bogus", Value::Cat("x"));
  EXPECT_FALSE(q.Validate(TestSchema()).ok());
}

TEST(ImpreciseQueryTest, ValidateRejectsTypeMismatch) {
  ImpreciseQuery q1;
  q1.Bind("Model", Value::Num(1));
  EXPECT_FALSE(q1.Validate(TestSchema()).ok());
  ImpreciseQuery q2;
  q2.Bind("Price", Value::Cat("cheap"));
  EXPECT_FALSE(q2.Validate(TestSchema()).ok());
}

TEST(ImpreciseQueryTest, ValidateRejectsNullBinding) {
  ImpreciseQuery q;
  q.Bind("Model", Value());
  EXPECT_FALSE(q.Validate(TestSchema()).ok());
}

TEST(ImpreciseQueryTest, ValidateRejectsDuplicateAttribute) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Model", Value::Cat("Accord"));
  EXPECT_FALSE(q.Validate(TestSchema()).ok());
}

TEST(ImpreciseQueryTest, ToBaseQueryTightensLikeToEquality) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  q.Bind("Price", Value::Num(10000));
  SelectionQuery base = q.ToBaseQuery();
  ASSERT_EQ(base.NumPredicates(), 2u);
  EXPECT_EQ(base.predicates()[0].op, CompareOp::kEq);
  EXPECT_EQ(base.predicates()[1].op, CompareOp::kEq);
  EXPECT_EQ(base.predicates()[0].value, Value::Cat("Camry"));
}

TEST(ImpreciseQueryTest, ToStringUsesLike) {
  ImpreciseQuery q;
  q.Bind("Model", Value::Cat("Camry"));
  EXPECT_EQ(q.ToString(), "Q(Model like Camry)");
}

TEST(ImpreciseQueryTest, Equality) {
  ImpreciseQuery a, b;
  a.Bind("Model", Value::Cat("Camry"));
  b.Bind("Model", Value::Cat("Camry"));
  EXPECT_EQ(a, b);
  b.Bind("Price", Value::Num(1));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace aimq
